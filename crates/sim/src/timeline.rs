//! Per-slot observability: text timelines of cluster load, admissions,
//! and energy prices over the horizon.
//!
//! The paper's story is temporal — diurnal prices, bursty arrivals,
//! suspend/resume schedules — and a welfare scalar hides all of it. This
//! module renders compact per-slot strips (one character per slot, 10
//! levels) so a run can be eyeballed in a terminal:
//!
//! ```text
//! util  ▁▂▃▅▇██▇▅▃▂▁...
//! price ▂▂▃▄▅▆▇█▇▆▅▄...
//! ```

use crate::driver::RunResult;
use pdftsp_cluster::{ExecutionEngine, ExecutionReport, ReplayError};
use pdftsp_types::{Decision, Scenario};

/// Ground-truth verification of a decision list: replays every committed
/// schedule slot by slot through the execution engine, checking schedule
/// validity, capacity constraints (4f)/(4g), and work completion.
///
/// This is the oracle the chaos suite holds recovered runs against — a
/// fault-recovery path may rewrite schedules mid-run, but whatever it
/// commits must still replay cleanly.
///
/// # Errors
/// Returns the first violation found.
pub fn replay(scenario: &Scenario, decisions: &[Decision]) -> Result<ExecutionReport, ReplayError> {
    ExecutionEngine::replay(scenario, decisions)
}

/// Characters for 9 intensity levels (space = zero).
const LEVELS: [char; 9] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█', '█'];

/// Renders a `[0, 1]` series as one character per entry.
#[must_use]
pub fn spark(series: &[f64]) -> String {
    series
        .iter()
        .map(|&v| {
            if v <= 0.0 {
                ' '
            } else {
                let idx = ((v.min(1.0)) * (LEVELS.len() - 1) as f64).round() as usize;
                LEVELS[idx.min(LEVELS.len() - 1)]
            }
        })
        .collect()
}

/// Per-slot cluster compute utilization in `[0, 1]`, recomputed from the
/// committed schedules.
#[must_use]
pub fn utilization_series(scenario: &Scenario, result: &RunResult) -> Vec<f64> {
    let horizon = scenario.horizon;
    let mut used = vec![0.0f64; horizon];
    for d in &result.decisions {
        if let Some(s) = d.schedule() {
            let task = &scenario.tasks[d.task];
            for &(k, t) in &s.placements {
                if k < task.rates.len() && t < horizon {
                    used[t] += task.rate(k) as f64;
                }
            }
        }
    }
    let capacity: f64 = scenario
        .nodes
        .iter()
        .map(|n| n.compute_capacity as f64)
        .sum();
    used.iter()
        .map(|&u| if capacity > 0.0 { u / capacity } else { 0.0 })
        .collect()
}

/// Per-slot arrivals, normalized by the maximum slot.
#[must_use]
pub fn arrival_series(scenario: &Scenario) -> Vec<f64> {
    let mut counts = vec![0.0f64; scenario.horizon];
    for t in &scenario.tasks {
        counts[t.arrival] += 1.0;
    }
    let max = counts.iter().copied().fold(0.0, f64::max).max(1.0);
    counts.iter().map(|&c| c / max).collect()
}

/// Mean per-slot energy price across nodes, normalized by the peak.
#[must_use]
pub fn price_series(scenario: &Scenario) -> Vec<f64> {
    let k_count = scenario.nodes.len().max(1);
    let mut mean = vec![0.0f64; scenario.horizon];
    for (t, m) in mean.iter_mut().enumerate() {
        for k in 0..scenario.nodes.len() {
            *m += scenario.cost.price(k, t) / k_count as f64;
        }
    }
    let max = mean.iter().copied().fold(0.0, f64::max).max(1e-12);
    mean.iter().map(|&m| m / max).collect()
}

/// Full timeline report for one run.
#[must_use]
pub fn render_timeline(scenario: &Scenario, result: &RunResult) -> String {
    format!(
        "slots 0..{} (one char per slot)\n\
         arrivals {}\n\
         price    {}\n\
         util     {}\n",
        scenario.horizon - 1,
        spark(&arrival_series(scenario)),
        spark(&price_series(scenario)),
        spark(&utilization_series(scenario, result)),
    )
}

/// Per-node occupancy gantt: one line per node, one char per slot,
/// digit = number of co-located tasks (capped at 9), `.` = idle.
///
/// A placement outside the cluster grid (out-of-horizon slot or unknown
/// node — a buggy or corrupted decision list) cannot be drawn in its
/// cell; instead of panicking on the out-of-bounds index, the affected
/// node row is flagged with a trailing ` !` (a footer line reports
/// placements on unknown nodes) so the corruption is visible in the
/// rendering it would otherwise have crashed.
#[must_use]
pub fn render_gantt(scenario: &Scenario, result: &RunResult) -> String {
    let horizon = scenario.horizon;
    let k_count = scenario.nodes.len();
    let mut counts = vec![0u32; k_count * horizon];
    // Nodes with at least one undrawable placement; the extra flag
    // covers placements whose node does not exist at all.
    let mut clipped = vec![false; k_count];
    let mut unknown_nodes = 0usize;
    for d in &result.decisions {
        if let Some(s) = d.schedule() {
            for &(k, t) in &s.placements {
                if k >= k_count {
                    unknown_nodes += 1;
                } else if t >= horizon {
                    clipped[k] = true;
                } else {
                    counts[k * horizon + t] += 1;
                }
            }
        }
    }
    let mut out = String::new();
    for (k, node) in scenario.nodes.iter().enumerate() {
        out.push_str(&format!("{:>4} {:<10} ", k, node.gpu.name()));
        for t in 0..horizon {
            let c = counts[k * horizon + t];
            out.push(match c {
                0 => '.',
                1..=9 => char::from_digit(c, 10).expect("digit"),
                _ => '+',
            });
        }
        if clipped[k] {
            out.push_str(" !");
        }
        out.push('\n');
    }
    if unknown_nodes > 0 {
        out.push_str(&format!(
            "   ! {unknown_nodes} placement(s) on nodes outside the cluster\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_algo, Algo};
    use pdftsp_workload::ScenarioBuilder;

    #[test]
    fn spark_maps_extremes() {
        let s = spark(&[0.0, 0.5, 1.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 3);
        assert_eq!(chars[0], ' ');
        assert_eq!(chars[2], '█');
        assert_ne!(chars[1], ' ');
        assert_ne!(chars[1], '█');
    }

    #[test]
    fn spark_clamps_out_of_range() {
        let s = spark(&[-0.5, 2.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars[0], ' ');
        assert_eq!(chars[1], '█');
    }

    #[test]
    fn utilization_is_bounded_and_nonzero_under_load() {
        let sc = ScenarioBuilder::smoke(5).build();
        let r = run_algo(&sc, Algo::Pdftsp, 0);
        let u = utilization_series(&sc, &r);
        assert_eq!(u.len(), sc.horizon);
        assert!(u.iter().all(|&x| (0.0..=1.0 + 1e-9).contains(&x)));
        assert!(u.iter().any(|&x| x > 0.0));
    }

    #[test]
    fn price_series_tracks_the_diurnal_shape() {
        let sc = ScenarioBuilder::smoke(5).build();
        let p = price_series(&sc);
        // Diurnal: mid-day peak above the midnight trough.
        let mid = p[sc.horizon / 2];
        assert!(mid > p[0], "mid {mid} vs start {}", p[0]);
        assert!((p.iter().copied().fold(0.0, f64::max) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gantt_has_one_row_per_node_with_horizon_cells() {
        let sc = ScenarioBuilder::smoke(7).build();
        let r = run_algo(&sc, Algo::Pdftsp, 0);
        let g = render_gantt(&sc, &r);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), sc.nodes.len());
        for line in &lines {
            let cells: String = line.chars().skip(16).collect();
            assert_eq!(cells.chars().count(), sc.horizon, "{line}");
        }
        // Under load at least one cell hosts >= 2 co-located tasks.
        assert!(g.chars().any(|c| ('2'..='9').contains(&c)), "{g}");
    }

    #[test]
    fn gantt_flags_out_of_grid_placements_instead_of_panicking() {
        let sc = ScenarioBuilder::smoke(7).build();
        let mut r = run_algo(&sc, Algo::Pdftsp, 0);
        // Corrupt the first admitted decision: one placement past the
        // horizon on node 0, one on a node that does not exist.
        let d = r
            .decisions
            .iter_mut()
            .find(|d| d.is_admitted())
            .expect("smoke run admits something");
        let task = d.task;
        if let pdftsp_types::AuctionOutcome::Admitted { schedule, .. } = &mut d.outcome {
            schedule.placements.push((0, sc.horizon + 5));
            schedule.placements.push((sc.nodes.len() + 3, 0));
        }
        let g = render_gantt(&sc, &r);
        let lines: Vec<&str> = g.lines().collect();
        // One row per node plus the unknown-node footer.
        assert_eq!(lines.len(), sc.nodes.len() + 1, "{g}");
        assert!(
            lines[0].ends_with(" !"),
            "node 0 row should carry the clipped marker: {g}"
        );
        assert!(lines.last().unwrap().contains("1 placement(s)"), "{g}");
        // The in-grid cells still render for every node.
        for line in lines.iter().take(sc.nodes.len()) {
            let cells: String = line.chars().skip(16).take(sc.horizon).collect();
            assert_eq!(cells.chars().count(), sc.horizon, "{line}");
        }
        // The utilization strip tolerates the same corruption.
        let u = utilization_series(&sc, &r);
        assert_eq!(u.len(), sc.horizon);
        let _ = task;
    }

    #[test]
    fn replay_verifies_clean_runs_and_catches_corrupted_ones() {
        let sc = ScenarioBuilder::smoke(9).build();
        let mut r = run_algo(&sc, Algo::Pdftsp, 0);
        let report = replay(&sc, &r.decisions).expect("clean run must replay");
        assert!(report.total_energy >= 0.0);
        // Corrupt a committed placement: replay must refuse it.
        let d = r
            .decisions
            .iter_mut()
            .find(|d| d.is_admitted())
            .expect("smoke run admits something");
        if let pdftsp_types::AuctionOutcome::Admitted { schedule, .. } = &mut d.outcome {
            schedule.placements.push((0, sc.horizon + 5));
        }
        assert!(replay(&sc, &r.decisions).is_err());
    }

    #[test]
    fn timeline_renders_all_three_strips() {
        let sc = ScenarioBuilder::smoke(6).build();
        let r = run_algo(&sc, Algo::Pdftsp, 0);
        let text = render_timeline(&sc, &r);
        assert!(text.contains("arrivals"));
        assert!(text.contains("price"));
        assert!(text.contains("util"));
        // Each strip is horizon chars long.
        for line in text.lines().skip(1) {
            let strip: String = line.chars().skip(9).collect();
            assert_eq!(strip.chars().count(), sc.horizon, "{line}");
        }
    }
}
