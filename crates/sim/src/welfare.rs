//! Social-welfare accounting (paper Eqs. 1–3).
//!
//! All quantities are recomputed from the scenario and the decision list —
//! schedulers cannot influence their reported welfare except through the
//! schedules they commit.
//!
//! ## Energy under `PricingRule::WithEnergy` — why there is no double count
//!
//! With the energy-inclusive payment rule the buyer's payment `p_i`
//! *contains* the schedule's operational cost `Σ e_ikt`. That energy term
//! then appears on both sides of the provider's books — once inside
//! `revenue` (the buyer reimburses it) and once inside `energy_cost` (the
//! provider pays the bill) — so in `U_c = revenue − vendor_cost −
//! energy_cost` it nets to zero: the provider merely passes the cost
//! through. The buyer side subtracts the full payment exactly once
//! (`U_r = Σ (b_i − p_i)`), so each unit of energy is charged to exactly
//! one party and `U = U_r + U_c` stays an identity under either pricing
//! rule (payments cancel between the two). The regression test
//! `with_energy_payment_is_not_double_counted` pins this down with
//! hand-computed numbers.

use pdftsp_types::{Decision, Scenario};

/// Economic outcome of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct WelfareReport {
    /// Social welfare `U = Σ b_i u_i − Σ q_in z_in − Σ e_ikt x_ikt` (Eq. 3).
    pub social_welfare: f64,
    /// `Σ b_i u_i`: total admitted bid value.
    pub admitted_bid_value: f64,
    /// `Σ q_in z_in`: total vendor payments.
    pub vendor_cost: f64,
    /// `Σ e_ikt x_ikt`: total operational cost.
    pub energy_cost: f64,
    /// `Σ p_i u_i`: total payments collected (0 for baselines without
    /// pricing).
    pub revenue: f64,
    /// Provider utility `U_c = revenue − vendor_cost − energy_cost` (Eq. 2).
    pub provider_utility: f64,
    /// Users' utility `U_r = Σ (b_i − p_i) u_i` (Eq. 1).
    pub user_utility: f64,
    /// Number of admitted tasks.
    pub admitted: usize,
    /// Number of rejected tasks.
    pub rejected: usize,
    /// Per-task decision latencies in seconds (drives Fig. 13).
    pub decide_seconds: Vec<f64>,
}

impl WelfareReport {
    /// Computes the report from ground truth.
    #[must_use]
    pub fn compute(scenario: &Scenario, decisions: &[Decision]) -> Self {
        let mut admitted_bid_value = 0.0;
        let mut vendor_cost = 0.0;
        let mut energy_cost = 0.0;
        let mut revenue = 0.0;
        let mut admitted = 0;
        let mut decide_seconds = Vec::with_capacity(decisions.len());
        for d in decisions {
            decide_seconds.push(d.decide_seconds);
            let Some(schedule) = d.schedule() else {
                continue;
            };
            let task = &scenario.tasks[d.task];
            admitted += 1;
            admitted_bid_value += task.bid;
            vendor_cost += schedule.vendor.price;
            energy_cost += schedule.energy_cost(task, &scenario.cost);
            revenue += d.payment();
        }
        let social_welfare = admitted_bid_value - vendor_cost - energy_cost;
        let provider_utility = revenue - vendor_cost - energy_cost;
        let user_utility = admitted_bid_value - revenue;
        WelfareReport {
            social_welfare,
            admitted_bid_value,
            vendor_cost,
            energy_cost,
            revenue,
            provider_utility,
            user_utility,
            admitted,
            rejected: decisions.len() - admitted,
            decide_seconds,
        }
    }

    /// Admission rate in `[0, 1]`.
    #[must_use]
    pub fn admission_rate(&self) -> f64 {
        let total = self.admitted + self.rejected;
        if total == 0 {
            0.0
        } else {
            self.admitted as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdftsp_types::{
        CostGrid, Decision, GpuModel, NodeSpec, Rejection, Schedule, TaskBuilder, VendorQuote,
    };

    fn scenario() -> Scenario {
        let tasks = vec![
            TaskBuilder::new(0, 0, 5)
                .dataset(1000)
                .bid(10.0)
                .memory_gb(4.0)
                .rates(vec![1000])
                .build()
                .unwrap(),
            TaskBuilder::new(1, 0, 5)
                .dataset(1000)
                .bid(8.0)
                .memory_gb(4.0)
                .rates(vec![1000])
                .build()
                .unwrap(),
        ];
        Scenario {
            horizon: 6,
            base_model_gb: 1.0,
            nodes: vec![NodeSpec::new(0, GpuModel::A100_80, 2000)],
            quotes: vec![vec![], vec![]],
            cost: CostGrid::flat(1, 6, 0.5),
            tasks,
        }
    }

    #[test]
    fn welfare_identity_holds() {
        let sc = scenario();
        let s0 = Schedule::new(
            0,
            VendorQuote {
                vendor: 0,
                price: 1.0,
                delay: 0,
            },
            vec![(0, 0)],
        );
        let s1 = Schedule::new(1, VendorQuote::none(), vec![(0, 1)]);
        let ds = vec![
            Decision::admitted(0, s0, 3.0, 0.01),
            Decision::admitted(1, s1, 2.0, 0.02),
        ];
        let r = WelfareReport::compute(&sc, &ds);
        // bids 18, vendor 1, energy 2 × 0.5 = 1 → welfare 16.
        assert!((r.social_welfare - 16.0).abs() < 1e-12);
        // U = U_r + U_c (Eq. 3: payments cancel).
        assert!((r.social_welfare - (r.user_utility + r.provider_utility)).abs() < 1e-12);
        assert!((r.revenue - 5.0).abs() < 1e-12);
        assert_eq!(r.admitted, 2);
        assert_eq!(r.decide_seconds, vec![0.01, 0.02]);
    }

    #[test]
    fn with_energy_payment_is_not_double_counted() {
        // Hand-computed single-task run under the default WithEnergy rule.
        // Task 0 runs 2 slots at flat cost 0.5/slot → energy = 1.0. With
        // zero duals and no vendor, Eq. (14) + energy gives p = 0 + 0 + 1.0.
        let sc = scenario();
        let s = Schedule::new(0, VendorQuote::none(), vec![(0, 0), (0, 1)]);
        let task = &sc.tasks[0];
        let energy = s.energy_cost(task, &sc.cost);
        assert!((energy - 1.0).abs() < 1e-12, "2 slots × 0.5");
        let p = pdftsp_core::payment(
            pdftsp_core::PricingRule::WithEnergy,
            task,
            &s,
            0.0, // max λ
            0.0, // max φ
            1000.0,
            energy,
        );
        assert!((p - 1.0).abs() < 1e-12, "zero duals → payment = energy");
        let r = WelfareReport::compute(&sc, &[Decision::admitted(0, s, p, 0.0)]);
        // Welfare: bid 10 − vendor 0 − energy 1 = 9 (energy subtracted once).
        assert!((r.social_welfare - 9.0).abs() < 1e-12);
        // Provider: the reimbursed energy cancels the energy bill exactly —
        // NOT −1 (which would double-count it against the buyer's payment).
        assert!((r.provider_utility - 0.0).abs() < 1e-12);
        // Buyer: pays the energy once, inside p.
        assert!((r.user_utility - 9.0).abs() < 1e-12);
        assert!((r.social_welfare - (r.user_utility + r.provider_utility)).abs() < 1e-12);
    }

    #[test]
    fn rejected_tasks_contribute_nothing() {
        let sc = scenario();
        let ds = vec![
            Decision::rejected(0, Rejection::NonPositiveSurplus, 0.0),
            Decision::rejected(1, Rejection::NoFeasibleSchedule, 0.0),
        ];
        let r = WelfareReport::compute(&sc, &ds);
        assert_eq!(r.social_welfare, 0.0);
        assert_eq!(r.admission_rate(), 0.0);
        assert_eq!(r.rejected, 2);
    }

    #[test]
    fn admission_rate_is_fractional() {
        let sc = scenario();
        let s0 = Schedule::new(0, VendorQuote::none(), vec![(0, 0)]);
        let ds = vec![
            Decision::admitted(0, s0, 0.0, 0.0),
            Decision::rejected(1, Rejection::NonPositiveSurplus, 0.0),
        ];
        let r = WelfareReport::compute(&sc, &ds);
        assert!((r.admission_rate() - 0.5).abs() < 1e-12);
    }
}
