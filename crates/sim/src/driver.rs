//! The simulation loop and the algorithm registry.

use crate::welfare::WelfareReport;
use pdftsp_baselines::{Eft, FixedPrice, FixedPriceConfig, Ntm, TitanConfig, TitanLike};
use pdftsp_cluster::{ClusterMetrics, ExecutionEngine, ReplayError};
use pdftsp_core::{Pdftsp, PdftspConfig};
use pdftsp_telemetry::{Reason, RunReport, Telemetry};
use pdftsp_types::{AuctionOutcome, Decision, OnlineScheduler, Rejection, Scenario, Task};
use std::fmt;

/// The algorithms compared in the paper's figures, plus the capacity-
/// masking ablation of pdFTSP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// The paper's algorithm (default config).
    Pdftsp,
    /// pdFTSP with the saturated-cell masking ablation.
    PdftspMasked,
    /// pdFTSP running the straight-line reference evaluation pipeline
    /// (decision-identical to [`Algo::Pdftsp`]; latency baseline only,
    /// not part of [`Algo::PAPER_SET`]).
    PdftspReference,
    /// Titan-like per-slot MILP.
    Titan,
    /// Earliest Finish Time.
    Eft,
    /// No Task Merging.
    Ntm,
    /// Posted fixed pricing (the de facto mechanism, extra comparison).
    FixedPrice,
}

impl Algo {
    /// The four algorithms every comparison figure plots.
    pub const PAPER_SET: [Algo; 4] = [Algo::Pdftsp, Algo::Titan, Algo::Eft, Algo::Ntm];

    /// Display name (matches the paper's legends).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Algo::Pdftsp => "pdFTSP",
            Algo::PdftspMasked => "pdFTSP-mask",
            Algo::PdftspReference => "pdFTSP-ref",
            Algo::Titan => "Titan",
            Algo::Eft => "EFT",
            Algo::Ntm => "NTM",
            Algo::FixedPrice => "FixedPrice",
        }
    }

    /// Instantiates the scheduler for a scenario. `seed` feeds the random
    /// vendor choices of Titan/NTM (pdFTSP and EFT are deterministic).
    #[must_use]
    pub fn build(self, scenario: &Scenario, seed: u64) -> Box<dyn OnlineScheduler> {
        match self {
            Algo::Pdftsp => Box::new(Pdftsp::new(scenario, PdftspConfig::default())),
            Algo::PdftspMasked => Box::new(Pdftsp::new(
                scenario,
                PdftspConfig::default().with_masking(),
            )),
            Algo::PdftspReference => {
                Box::new(Pdftsp::new(scenario, PdftspConfig::default().reference()))
            }
            Algo::Titan => Box::new(TitanLike::new(scenario, seed, TitanConfig::default())),
            Algo::Eft => Box::new(Eft::new(scenario)),
            Algo::Ntm => Box::new(Ntm::new(scenario, seed)),
            Algo::FixedPrice => Box::new(FixedPrice::new(scenario, FixedPriceConfig::default())),
        }
    }
}

/// Outcome of one full run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Scheduler name.
    pub algo: String,
    /// Per-task decisions in arrival order.
    pub decisions: Vec<Decision>,
    /// Ground-truth welfare accounting.
    pub welfare: WelfareReport,
    /// Cluster utilization/co-location metrics.
    pub metrics: ClusterMetrics,
    /// Aggregate telemetry report. For uninstrumented schedulers (the
    /// baselines) this holds the decision tallies, exact decide-latency
    /// percentiles, and utilization; [`run_pdftsp_instrumented`] replaces
    /// it with the full counter-backed report (prune/DP-work fields).
    pub report: RunReport,
}

/// A run that could not produce a valid [`RunResult`]: the scheduler under
/// test violated the driver contract or committed an invalid outcome.
/// Either way the *scheduler* is buggy, not the input — but a sweep over
/// many scenarios should report the bad cell and keep going rather than
/// abort, so this surfaces as an error instead of a panic.
#[derive(Debug, Clone)]
pub enum RunError {
    /// The scheduler broke the `on_slot` contract (wrong decision count
    /// or order).
    Contract {
        /// Scheduler name.
        scheduler: String,
        /// What went wrong.
        detail: String,
    },
    /// The committed decisions failed ground-truth replay (capacity
    /// overflow, invalid schedule, or unfinished admitted work).
    Replay {
        /// Scheduler name.
        scheduler: String,
        /// The replay verdict.
        error: ReplayError,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Contract { scheduler, detail } => {
                write!(f, "{scheduler}: driver contract violated: {detail}")
            }
            RunError::Replay { scheduler, error } => {
                write!(f, "{scheduler}: invalid outcome: {error}")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Maps the decision-level rejection reason onto the telemetry vocabulary.
fn telemetry_reason(why: Rejection) -> Reason {
    match why {
        Rejection::NoFeasibleSchedule => Reason::NoFeasibleSchedule,
        // Budget caps make the trade non-executable for the bidder —
        // telemetry counts them with the surplus losers so the wire
        // format (flight-recorder bytes, JSON names) stays fixed.
        Rejection::NonPositiveSurplus | Rejection::BudgetExceeded => Reason::NonPositiveSurplus,
        Rejection::InsufficientCapacity => Reason::InsufficientCapacity,
    }
}

/// Builds the decision-tally report shared by every scheduler: outcome
/// counts from the decision list, exact latency percentiles from
/// `Decision::decide_seconds`, utilization from the replayed ledger.
fn decision_report(name: &str, decisions: &[Decision], metrics: &ClusterMetrics) -> RunReport {
    let mut report = RunReport::named(name);
    let mut samples = Vec::with_capacity(decisions.len());
    for d in decisions {
        samples.push(d.decide_seconds);
        match &d.outcome {
            AuctionOutcome::Admitted { .. } => report.tally_admitted(),
            AuctionOutcome::Rejected(why) => report.tally_rejected(telemetry_reason(*why)),
        }
    }
    report
        .with_exact_latency(&samples)
        .with_utilization(metrics.utilization_summary())
}

/// Runs `scheduler` over `scenario`: feeds arrivals slot by slot, then
/// replays all committed schedules through the execution engine to verify
/// capacity and deadlines, and computes the welfare report.
///
/// # Errors
/// Fails if the scheduler breaks the `on_slot` contract or commits an
/// invalid outcome (capacity overflow, bad schedule, unfinished admitted
/// task) — that is a bug in the scheduler under test; sweeps report it
/// per scenario instead of aborting wholesale.
pub fn try_run_scheduler(
    scenario: &Scenario,
    scheduler: &mut dyn OnlineScheduler,
) -> Result<RunResult, RunError> {
    let name = scheduler.name().to_owned();
    let contract = |detail: String| RunError::Contract {
        scheduler: name.clone(),
        detail,
    };
    let mut decisions: Vec<Decision> = Vec::with_capacity(scenario.tasks.len());
    let mut next_task = 0usize;
    for slot in 0..scenario.horizon {
        let start = next_task;
        while next_task < scenario.tasks.len() && scenario.tasks[next_task].arrival == slot {
            next_task += 1;
        }
        if start == next_task {
            continue;
        }
        let arrivals: Vec<&Task> = scenario.tasks[start..next_task].iter().collect();
        let out = scheduler.on_slot(slot, &arrivals, scenario);
        if out.len() != arrivals.len() {
            return Err(contract(format!(
                "slot {slot}: {} decisions for {} arrivals",
                out.len(),
                arrivals.len()
            )));
        }
        for (d, t) in out.iter().zip(&arrivals) {
            if d.task != t.id {
                return Err(contract(format!(
                    "slot {slot}: decision for task {} where task {} arrived",
                    d.task, t.id
                )));
            }
        }
        decisions.extend(out);
    }
    debug_assert_eq!(next_task, scenario.tasks.len(), "tasks outside horizon");

    let report =
        ExecutionEngine::replay(scenario, &decisions).map_err(|error| RunError::Replay {
            scheduler: scheduler.name().to_owned(),
            error,
        })?;
    let welfare = WelfareReport::compute(scenario, &decisions);
    let metrics = ClusterMetrics::compute(scenario, &report.ledger, &decisions);
    let run_report = decision_report(scheduler.name(), &decisions, &metrics);
    Ok(RunResult {
        algo: scheduler.name().to_owned(),
        decisions,
        welfare,
        metrics,
        report: run_report,
    })
}

/// [`try_run_scheduler`], panicking on an invalid run.
///
/// # Panics
/// Panics on any [`RunError`] — the convenient form for tests and single
/// runs, where hiding a scheduler bug would corrupt every figure.
#[must_use]
pub fn run_scheduler(scenario: &Scenario, scheduler: &mut dyn OnlineScheduler) -> RunResult {
    try_run_scheduler(scenario, scheduler).unwrap_or_else(|e| panic!("{e}"))
}

/// Convenience: builds and runs `algo` on `scenario`.
///
/// ```
/// use pdftsp_sim::{run_algo, Algo};
/// use pdftsp_workload::ScenarioBuilder;
///
/// let scenario = ScenarioBuilder::smoke(7).build();
/// let result = run_algo(&scenario, Algo::Pdftsp, 0);
/// assert_eq!(result.decisions.len(), scenario.num_tasks());
/// assert!(result.welfare.social_welfare.is_finite());
/// ```
#[must_use]
pub fn run_algo(scenario: &Scenario, algo: Algo, seed: u64) -> RunResult {
    let mut scheduler = algo.build(scenario, seed);
    run_scheduler(scenario, scheduler.as_mut())
}

/// [`run_algo`] with the error surfaced instead of a panic.
///
/// # Errors
/// Same contract as [`try_run_scheduler`].
pub fn try_run_algo(scenario: &Scenario, algo: Algo, seed: u64) -> Result<RunResult, RunError> {
    let mut scheduler = algo.build(scenario, seed);
    try_run_scheduler(scenario, scheduler.as_mut())
}

/// Runs pdFTSP with an attached [`Telemetry`] pipeline and returns both the
/// run outcome and the scheduler itself (for its final dual prices and
/// counters). The result's `report` is the full counter-backed
/// [`RunReport`] — prune hit-rate, DP work, dual updates — with exact
/// latency percentiles and cluster utilization attached, in contrast to
/// the decision-tally report [`run_scheduler`] builds for uninstrumented
/// schedulers.
///
/// ```
/// use pdftsp_core::PdftspConfig;
/// use pdftsp_sim::run_pdftsp_instrumented;
/// use pdftsp_telemetry::Telemetry;
/// use pdftsp_workload::ScenarioBuilder;
///
/// let scenario = ScenarioBuilder::smoke(7).build();
/// let (result, scheduler) =
///     run_pdftsp_instrumented(&scenario, PdftspConfig::default(), Telemetry::disabled());
/// assert_eq!(result.report.decisions as usize, scenario.num_tasks());
/// assert!(result.report.dp_runs > 0);
/// assert!(scheduler.duals().nodes() > 0);
/// ```
#[must_use]
pub fn run_pdftsp_instrumented(
    scenario: &Scenario,
    config: PdftspConfig,
    telemetry: Telemetry,
) -> (RunResult, Pdftsp) {
    let pool_before = pdftsp_cluster::pool_stats();
    let mut scheduler = Pdftsp::with_telemetry(scenario, config, telemetry);
    let mut result = run_scheduler(scenario, &mut scheduler);
    let samples: Vec<f64> = result.decisions.iter().map(|d| d.decide_seconds).collect();
    let pool_after = pdftsp_cluster::pool_stats();
    result.report = RunReport::from_counters(scheduler.name(), &scheduler.telemetry().counters)
        .with_exact_latency(&samples)
        .with_utilization(result.metrics.utilization_summary())
        .with_pool(
            pool_after.tasks.saturating_sub(pool_before.tasks),
            pool_after.park_ns.saturating_sub(pool_before.park_ns),
            0,
        );
    (result, scheduler)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdftsp_workload::ScenarioBuilder;

    #[test]
    fn all_paper_algorithms_run_a_smoke_scenario() {
        let sc = ScenarioBuilder::smoke(21).build();
        for algo in Algo::PAPER_SET {
            let r = run_algo(&sc, algo, 1);
            assert_eq!(r.decisions.len(), sc.num_tasks(), "{}", algo.name());
            assert!(
                r.welfare.social_welfare.is_finite(),
                "{}: welfare {:?}",
                algo.name(),
                r.welfare.social_welfare
            );
            assert_eq!(r.algo, algo.name());
        }
    }

    #[test]
    fn pdftsp_is_deterministic_across_runs() {
        let sc = ScenarioBuilder::smoke(22).build();
        let a = run_algo(&sc, Algo::Pdftsp, 1);
        let b = run_algo(&sc, Algo::Pdftsp, 999); // seed must not matter
        assert_eq!(a.welfare.social_welfare, b.welfare.social_welfare);
        assert_eq!(a.welfare.admitted, b.welfare.admitted);
    }

    #[test]
    fn pdftsp_beats_blind_baselines_on_smoke_welfare() {
        // Averaged over a few seeds to avoid cherry-picking.
        let mut pd = 0.0;
        let mut eft = 0.0;
        let mut ntm = 0.0;
        for seed in 0..5 {
            let sc = ScenarioBuilder::smoke(100 + seed).build();
            pd += run_algo(&sc, Algo::Pdftsp, seed).welfare.social_welfare;
            eft += run_algo(&sc, Algo::Eft, seed).welfare.social_welfare;
            ntm += run_algo(&sc, Algo::Ntm, seed).welfare.social_welfare;
        }
        assert!(pd > 0.0);
        assert!(pd >= ntm, "pdFTSP {pd} < NTM {ntm}");
        // EFT can tie on uncongested smoke loads but must not win big.
        assert!(pd >= 0.8 * eft, "pdFTSP {pd} ≪ EFT {eft}");
    }

    #[test]
    fn reference_pipeline_matches_default_end_to_end() {
        for seed in [23, 24, 25] {
            let sc = ScenarioBuilder::smoke(seed).build();
            let opt = run_algo(&sc, Algo::Pdftsp, 0);
            let reference = run_algo(&sc, Algo::PdftspReference, 0);
            assert_eq!(reference.algo, "pdFTSP-ref");
            assert_eq!(opt.welfare.admitted, reference.welfare.admitted);
            assert_eq!(
                opt.welfare.social_welfare.to_bits(),
                reference.welfare.social_welfare.to_bits()
            );
            for (a, b) in opt.decisions.iter().zip(&reference.decisions) {
                // Rejection *reasons* may differ for pruned vendors (the
                // documented bookkeeping divergence); wins must be identical.
                match (&a.outcome, &b.outcome) {
                    (
                        pdftsp_types::AuctionOutcome::Admitted { schedule, payment },
                        pdftsp_types::AuctionOutcome::Admitted {
                            schedule: s2,
                            payment: p2,
                        },
                    ) => {
                        assert_eq!(schedule, s2, "seed {seed}");
                        assert_eq!(payment.to_bits(), p2.to_bits(), "seed {seed}");
                    }
                    (
                        pdftsp_types::AuctionOutcome::Rejected(_),
                        pdftsp_types::AuctionOutcome::Rejected(_),
                    ) => {}
                    (x, y) => panic!("seed {seed}: outcome split {x:?} vs {y:?}"),
                }
            }
        }
    }

    #[test]
    fn run_report_tallies_match_the_decision_list_for_every_algo() {
        let sc = ScenarioBuilder::smoke(44).build();
        for algo in Algo::PAPER_SET {
            let r = run_algo(&sc, algo, 3);
            let admitted = r.decisions.iter().filter(|d| d.is_admitted()).count() as u64;
            assert_eq!(r.report.scheduler, algo.name());
            assert_eq!(r.report.decisions as usize, r.decisions.len());
            assert_eq!(r.report.admitted, admitted, "{}", algo.name());
            assert_eq!(
                r.report.rejected(),
                r.decisions.len() as u64 - admitted,
                "{}",
                algo.name()
            );
            assert!(r.report.latency.exact);
            assert_eq!(r.report.latency.count as usize, r.decisions.len());
            let u = r.report.utilization.expect("replay ran");
            assert_eq!(u.peak_colocation, r.metrics.peak_colocation);
        }
    }

    #[test]
    fn instrumented_run_matches_plain_run_and_adds_counters() {
        use pdftsp_telemetry::Telemetry;
        let sc = ScenarioBuilder::smoke(45).build();
        let plain = run_algo(&sc, Algo::Pdftsp, 0);
        let (inst, scheduler) =
            run_pdftsp_instrumented(&sc, PdftspConfig::default(), Telemetry::disabled());
        // Decisions identical: telemetry must not perturb the algorithm.
        assert_eq!(plain.decisions.len(), inst.decisions.len());
        for (a, b) in plain.decisions.iter().zip(&inst.decisions) {
            assert_eq!(a.outcome, b.outcome);
        }
        // The instrumented report carries the counter-backed fields the
        // decision tally can't know, while agreeing on the tallies.
        assert_eq!(inst.report.decisions, plain.report.decisions);
        assert_eq!(inst.report.admitted, plain.report.admitted);
        assert!(inst.report.dp_runs > 0);
        assert!(inst.report.vendors_seen > 0);
        assert!(inst.report.grid_builds > 0);
        assert_eq!(
            inst.report.dual_updates,
            scheduler
                .telemetry()
                .counters
                .read(&scheduler.telemetry().counters.dual_updates)
        );
        assert!(inst.report.latency.exact);
        assert!(inst.report.utilization.is_some());
    }

    #[test]
    fn contract_violations_surface_as_errors_not_panics() {
        use pdftsp_types::{OnlineScheduler, Slot, SlotOutcome};

        /// Returns no decisions at all — breaks the count contract.
        struct Mute;
        impl OnlineScheduler for Mute {
            fn name(&self) -> &'static str {
                "mute"
            }
            fn on_slot(&mut self, _: Slot, _: &[&Task], _: &Scenario) -> SlotOutcome {
                Vec::new()
            }
        }

        /// Admits every task onto a node/slot that does not exist —
        /// passes the contract but fails ground-truth replay.
        struct Rogue;
        impl OnlineScheduler for Rogue {
            fn name(&self) -> &'static str {
                "rogue"
            }
            fn on_slot(&mut self, _: Slot, arrivals: &[&Task], _: &Scenario) -> SlotOutcome {
                arrivals
                    .iter()
                    .map(|t| {
                        let s = pdftsp_types::Schedule::new(
                            t.id,
                            pdftsp_types::VendorQuote::none(),
                            vec![(999, 0)],
                        );
                        Decision::admitted(t.id, s, 1.0, 0.0)
                    })
                    .collect()
            }
        }

        let sc = ScenarioBuilder::smoke(7).build();
        let err = try_run_scheduler(&sc, &mut Mute).unwrap_err();
        assert!(matches!(&err, RunError::Contract { scheduler, .. } if scheduler == "mute"));
        assert!(err.to_string().contains("contract"), "{err}");

        let err = try_run_scheduler(&sc, &mut Rogue).unwrap_err();
        assert!(matches!(&err, RunError::Replay { scheduler, .. } if scheduler == "rogue"));
        assert!(err.to_string().contains("invalid outcome"), "{err}");

        // The happy path is unchanged through the fallible entry point.
        assert!(try_run_algo(&sc, Algo::Pdftsp, 0).is_ok());
    }

    #[test]
    fn masked_variant_never_capacity_rejects() {
        let sc = ScenarioBuilder::smoke(33).build();
        let r = run_algo(&sc, Algo::PdftspMasked, 0);
        for d in &r.decisions {
            assert_ne!(
                d.outcome,
                pdftsp_types::AuctionOutcome::Rejected(
                    pdftsp_types::Rejection::InsufficientCapacity
                )
            );
        }
    }
}
