//! Time-varying operational-cost (energy price) signals.
//!
//! The paper stresses that the data center's operational cost is "constantly
//! changing" (citing electricity-market work). We provide three signal
//! shapes; the experiments default to the diurnal one:
//!
//! * [`PriceModel::Flat`] — constant price (ablation control);
//! * [`PriceModel::Diurnal`] — a day-shaped sinusoid peaking in the
//!   afternoon, the classic electricity-market profile;
//! * [`PriceModel::Spiky`] — diurnal plus random demand-charge spikes.

use pdftsp_types::CostGrid;
use rand::Rng;

/// Slots per day for periodic price signals: the paper's horizon is
/// 144 slots of 10 minutes, i.e. exactly one day, so the historical
/// `phase = t / horizon` behaviour and the periodic behaviour coincide
/// at the paper's canonical horizon (fig baselines are preserved).
/// Runs longer than one day now see the sinusoid repeat instead of
/// stretching a single "day" across the whole horizon.
pub const SLOTS_PER_DAY: usize = 144;

/// Price-signal shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PriceModel {
    /// Constant `base` at every slot.
    Flat,
    /// `base · (1 + amplitude · sin(2π((t mod P)/P − 0.25)))` with period
    /// `P = slots_per_day`: trough at t=0 (midnight), peak mid-day.
    /// `amplitude ∈ [0, 1)`.
    Diurnal { amplitude: f64 },
    /// Diurnal plus spikes: with probability `spike_prob` per slot the
    /// price is multiplied by `spike_factor`.
    Spiky {
        amplitude: f64,
        spike_prob: f64,
        spike_factor: f64,
    },
}

/// Generator of per-node per-slot energy prices.
#[derive(Debug, Clone)]
pub struct EnergySignal {
    /// Baseline price per slot of full-weight execution.
    pub base: f64,
    /// Signal shape.
    pub model: PriceModel,
    /// Relative power draw per node (1.0 = baseline; an A100 node draws
    /// more power than an A40 node).
    pub node_power: Vec<f64>,
    /// Period of the diurnal sinusoid in slots (default
    /// [`SLOTS_PER_DAY`]). Historically the "day" was stretched across
    /// the whole horizon, which made a 48-slot and a 4800-slot run see
    /// entirely different price dynamics.
    pub slots_per_day: usize,
}

impl EnergySignal {
    /// Uniform node power.
    #[must_use]
    pub fn uniform(base: f64, model: PriceModel, nodes: usize) -> Self {
        EnergySignal {
            base,
            model,
            node_power: vec![1.0; nodes],
            slots_per_day: SLOTS_PER_DAY,
        }
    }

    /// Builds the `K × T` [`CostGrid`], sampling spikes from `rng`.
    ///
    /// # Panics
    /// Panics if the generated grid is invalid (programming error: the
    /// generator only emits non-negative finite prices).
    pub fn grid<R: Rng>(&self, horizon: usize, rng: &mut R) -> CostGrid {
        let nodes = self.node_power.len();
        let mut price = Vec::with_capacity(nodes * horizon);
        // Pre-draw spike pattern per slot so all nodes spike together
        // (grid-wide demand charges).
        let spikes: Vec<f64> = (0..horizon)
            .map(|_| match self.model {
                PriceModel::Spiky {
                    spike_prob,
                    spike_factor,
                    ..
                } if rng.gen::<f64>() < spike_prob => spike_factor,
                _ => 1.0,
            })
            .collect();
        for k in 0..nodes {
            for (t, spike) in spikes.iter().enumerate() {
                let shape = match self.model {
                    PriceModel::Flat => 1.0,
                    PriceModel::Diurnal { amplitude } | PriceModel::Spiky { amplitude, .. } => {
                        let period = self.slots_per_day.max(1);
                        let phase = (t % period) as f64 / period as f64;
                        1.0 + amplitude * (std::f64::consts::TAU * (phase - 0.25)).sin()
                    }
                };
                price.push(self.base * self.node_power[k] * shape * spike);
            }
        }
        CostGrid::from_vec(nodes, horizon, price).expect("generated grid is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn flat_signal_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = EnergySignal::uniform(0.4, PriceModel::Flat, 3).grid(10, &mut rng);
        for k in 0..3 {
            for t in 0..10 {
                assert!((g.price(k, t) - 0.4).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn diurnal_signal_peaks_midday_and_troughs_at_night() {
        let mut rng = StdRng::seed_from_u64(1);
        let horizon = 144;
        let g = EnergySignal::uniform(1.0, PriceModel::Diurnal { amplitude: 0.5 }, 1)
            .grid(horizon, &mut rng);
        // Peak near 3/4 into... phase-0.25 sine peaks at phase=0.5 (t=72).
        let peak = g.price(0, 72);
        let trough = g.price(0, 0);
        assert!(peak > 1.4, "peak {peak}");
        assert!(trough < 0.7, "trough {trough}");
        // Never negative with amplitude < 1.
        for t in 0..horizon {
            assert!(g.price(0, t) >= 0.0);
        }
    }

    #[test]
    fn node_power_scales_prices() {
        let mut rng = StdRng::seed_from_u64(1);
        let sig = EnergySignal {
            base: 1.0,
            model: PriceModel::Flat,
            node_power: vec![1.0, 2.5],
            slots_per_day: SLOTS_PER_DAY,
        };
        let g = sig.grid(4, &mut rng);
        assert!((g.price(1, 0) / g.price(0, 0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn spiky_signal_spikes_all_nodes_together() {
        let mut rng = StdRng::seed_from_u64(42);
        let sig = EnergySignal {
            base: 1.0,
            model: PriceModel::Spiky {
                amplitude: 0.0,
                spike_prob: 0.5,
                spike_factor: 3.0,
            },
            node_power: vec![1.0, 1.0],
            slots_per_day: SLOTS_PER_DAY,
        };
        let g = sig.grid(40, &mut rng);
        let mut spiked = 0;
        for t in 0..40 {
            let p0 = g.price(0, t);
            let p1 = g.price(1, t);
            assert!((p0 - p1).abs() < 1e-12, "nodes must spike together");
            if p0 > 2.0 {
                spiked += 1;
            }
        }
        // With prob 0.5 over 40 slots, expect some spikes and some calm.
        assert!(spiked > 5 && spiked < 35, "spiked {spiked}");
    }

    #[test]
    fn diurnal_shape_is_periodic_and_horizon_independent() {
        // The per-day price shape must be identical whether the run
        // lasts one day or three: the sinusoid is periodic in
        // `slots_per_day`, not stretched across the horizon.
        let sig = EnergySignal::uniform(1.0, PriceModel::Diurnal { amplitude: 0.7 }, 1);
        let one_day = sig.grid(SLOTS_PER_DAY, &mut StdRng::seed_from_u64(1));
        let three_days = sig.grid(3 * SLOTS_PER_DAY, &mut StdRng::seed_from_u64(1));
        for t in 0..SLOTS_PER_DAY {
            let p = one_day.price(0, t);
            for day in 0..3 {
                let q = three_days.price(0, day * SLOTS_PER_DAY + t);
                assert!(
                    (p - q).abs() < 1e-12,
                    "slot {t} day {day}: {p} vs {q} — day shape depends on horizon"
                );
            }
        }
        // A shorter-than-a-day horizon sees a prefix of the same day.
        let half_day = sig.grid(SLOTS_PER_DAY / 2, &mut StdRng::seed_from_u64(1));
        for t in 0..SLOTS_PER_DAY / 2 {
            assert!((half_day.price(0, t) - one_day.price(0, t)).abs() < 1e-12);
        }
    }

    #[test]
    fn same_seed_same_grid() {
        let sig = EnergySignal::uniform(
            1.0,
            PriceModel::Spiky {
                amplitude: 0.3,
                spike_prob: 0.2,
                spike_factor: 2.0,
            },
            2,
        );
        let g1 = sig.grid(20, &mut StdRng::seed_from_u64(7));
        let g2 = sig.grid(20, &mut StdRng::seed_from_u64(7));
        assert_eq!(g1, g2);
    }
}
