//! Revocable node leases (spot / preemptible capacity).
//!
//! In a spot market part of the cluster is rented rather than owned:
//! the upstream provider may *revoke* a leased node with little notice
//! and hand it back later. A revocation is operationally identical to a
//! node crash followed by a recovery — the lease layer only decides
//! *which* nodes go away *when*; the quarantine/resubmit/refund
//! machinery of the fault driver handles the consequences verbatim.
//!
//! Lease plans are seeded and deterministic, like everything else in
//! the workspace: the same `(nodes, horizon, spec, seed)` always
//! produces the same revocation schedule.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One revocable lease window: the node is *lost* (revoked) at
/// `revoke_slot` and returned at `restore_slot` (exclusive; a
/// `restore_slot` past the horizon means it never comes back).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeLease {
    /// The leased node.
    pub node: usize,
    /// First slot the node is unavailable.
    pub revoke_slot: usize,
    /// First slot the node is available again (exclusive end of the
    /// revocation window).
    pub restore_slot: usize,
}

impl NodeLease {
    /// Whether `(node, slot)` falls inside this revocation window.
    #[must_use]
    pub fn covers(&self, node: usize, slot: usize) -> bool {
        node == self.node && (self.revoke_slot..self.restore_slot).contains(&slot)
    }
}

/// A seeded set of lease revocations for one cluster.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LeasePlan {
    /// Revocations sorted by `(revoke_slot, node)`.
    pub leases: Vec<NodeLease>,
}

impl LeasePlan {
    /// No revocable capacity: the run reduces to the owned-cluster path.
    #[must_use]
    pub fn none() -> LeasePlan {
        LeasePlan::default()
    }

    /// Generates `count` revocation attempts over `nodes` nodes and a
    /// `horizon`-slot run, each lasting `lease_len` slots. Revocations
    /// land in `1..horizon` (slot 0 always executes cleanly, matching
    /// the fault planner). Attempts overlapping an existing window on
    /// the same node are dropped rather than re-rolled, so the RNG draw
    /// sequence is independent of prior accepts — the same invariant
    /// the crash planner keeps.
    #[must_use]
    pub fn generate(
        nodes: usize,
        horizon: usize,
        count: usize,
        lease_len: usize,
        seed: u64,
    ) -> LeasePlan {
        let mut leases: Vec<NodeLease> = Vec::new();
        if nodes == 0 || horizon < 2 {
            return LeasePlan { leases };
        }
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..count {
            let node = rng.gen_range(0..nodes);
            let revoke_slot = rng.gen_range(1..horizon);
            let restore_slot = revoke_slot + lease_len.max(1);
            let overlaps = leases.iter().any(|l| {
                l.node == node && revoke_slot < l.restore_slot && restore_slot > l.revoke_slot
            });
            if overlaps {
                continue;
            }
            leases.push(NodeLease {
                node,
                revoke_slot,
                restore_slot,
            });
        }
        leases.sort_by_key(|l| (l.revoke_slot, l.node));
        LeasePlan { leases }
    }

    /// Whether `(node, slot)` is inside any revocation window.
    #[must_use]
    pub fn revoked(&self, node: usize, slot: usize) -> bool {
        self.leases.iter().any(|l| l.covers(node, slot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let a = LeasePlan::generate(8, 48, 5, 6, 17);
        let b = LeasePlan::generate(8, 48, 5, 6, 17);
        assert_eq!(a, b);
        assert!(!a.leases.is_empty());
    }

    #[test]
    fn windows_never_overlap_per_node() {
        let plan = LeasePlan::generate(3, 64, 40, 8, 5);
        for (i, a) in plan.leases.iter().enumerate() {
            for b in &plan.leases[i + 1..] {
                if a.node == b.node {
                    assert!(
                        a.restore_slot <= b.revoke_slot || b.restore_slot <= a.revoke_slot,
                        "overlap: {a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn revocations_spare_slot_zero() {
        let plan = LeasePlan::generate(4, 32, 20, 4, 9);
        assert!(plan.leases.iter().all(|l| l.revoke_slot >= 1));
        for k in 0..4 {
            assert!(!plan.revoked(k, 0));
        }
    }

    #[test]
    fn covers_is_half_open() {
        let l = NodeLease {
            node: 2,
            revoke_slot: 5,
            restore_slot: 8,
        };
        assert!(!l.covers(2, 4));
        assert!(l.covers(2, 5));
        assert!(l.covers(2, 7));
        assert!(!l.covers(2, 8));
        assert!(!l.covers(1, 6));
    }

    #[test]
    fn degenerate_clusters_get_empty_plans() {
        assert!(LeasePlan::generate(0, 48, 5, 4, 1).leases.is_empty());
        assert!(LeasePlan::generate(4, 1, 5, 4, 1).leases.is_empty());
    }
}
