//! Capacity accounting for constraints (4f) and (4g).
//!
//! The ledger tracks, per `(node, slot)` cell, the computation already
//! committed (`Σ s_ik x_ikt`, in samples) and the adapter memory already
//! committed (`Σ r_i x_ikt`, in GB). Memory is compared against
//! `C_km − r_b`: one base-model replica is always reserved per node, the
//! conservative reading of (4g) used throughout the paper (up to one
//! replica per node, shared by all co-located LoRA tasks).
//!
//! ## Exact arithmetic
//!
//! Compute is integral (samples). Memory is stored in fixed-point units of
//! `2⁻²⁰ GB` (≈ 1 KiB), converted once at the API boundary, so commits and
//! releases are integer adds/subtracts: any `commit` followed by `release`
//! restores the residuals *bit-exactly* — the rollback identity the
//! fault-recovery path relies on. (Accumulating `f64` GB instead would
//! leave `(x + a) − a ≠ x` dust behind every released schedule.) The public
//! API stays in GB; quantization error is at most half a unit (≈ 5·10⁻⁷
//! GB), far below any adapter size the workloads produce.
//!
//! ## Faults
//!
//! Node failures are expressed through the same residual machinery the
//! scheduler already reads: [`CapacityLedger::quarantine`] reserves *all*
//! residual capacity on a node's cells from the failure slot on, so the
//! masked DP (`CapacityPolicy::MaskSaturated`) stops proposing them and
//! `fits`-style checks refuse them, with zero scheduler changes.
//! [`CapacityLedger::lift_quarantine`] returns exactly what was held.

use pdftsp_types::{NodeId, Scenario, Schedule, Slot, Task};

/// Fixed-point memory units per GB (`2²⁰` — the quantum is ~1 KiB).
const MEM_UNITS_PER_GB: f64 = (1u64 << 20) as f64;

/// GB → fixed-point units (round to nearest).
#[inline]
fn mem_units(gb: f64) -> u64 {
    (gb * MEM_UNITS_PER_GB).round() as u64
}

/// Fixed-point units → GB.
#[inline]
fn mem_gb(units: u64) -> f64 {
    units as f64 / MEM_UNITS_PER_GB
}

/// Why a commit, reserve, or release was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerError {
    /// Computation capacity would be exceeded on `(node, slot)`.
    ComputeOverflow {
        node: NodeId,
        slot: Slot,
        used: u64,
        adding: u64,
        capacity: u64,
    },
    /// Adapter memory would be exceeded on `(node, slot)`.
    MemoryOverflow {
        node: NodeId,
        slot: Slot,
        used_gb: f64,
        adding_gb: f64,
        capacity_gb: f64,
    },
    /// The schedule references an out-of-range node or slot.
    OutOfRange { node: NodeId, slot: Slot },
    /// A release asked for more than the cell holds — the placements were
    /// never committed (or were already released).
    ReleaseUnderflow { node: NodeId, slot: Slot },
}

impl std::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LedgerError::ComputeOverflow {
                node,
                slot,
                used,
                adding,
                capacity,
            } => write!(
                f,
                "compute overflow on node {node} slot {slot}: {used}+{adding} > {capacity}"
            ),
            LedgerError::MemoryOverflow {
                node,
                slot,
                used_gb,
                adding_gb,
                capacity_gb,
            } => write!(
                f,
                "memory overflow on node {node} slot {slot}: {used_gb}+{adding_gb} > {capacity_gb} GB"
            ),
            LedgerError::OutOfRange { node, slot } => {
                write!(f, "placement (node {node}, slot {slot}) out of range")
            }
            LedgerError::ReleaseUnderflow { node, slot } => {
                write!(
                    f,
                    "release underflow on (node {node}, slot {slot}): more than committed"
                )
            }
        }
    }
}

impl std::error::Error for LedgerError {}

/// What a [`CapacityLedger::release`] returned to the pool.
#[derive(Debug, Clone, PartialEq)]
pub struct Released {
    /// Total computation freed, in samples (summed over cells).
    pub compute: u64,
    /// Total adapter memory freed, in GB (summed over cells).
    pub memory_gb: f64,
    /// Number of `(node, slot)` cells touched.
    pub cells: usize,
    /// Nodes whose every cell became completely idle as a result of this
    /// release. Their shared base-model replica `r_b` stays resident (the
    /// ledger's memory capacity is `C_km − r_b` throughout), so an emptied
    /// node offers exactly `C_km − r_b` adapter GB again — never `C_km`.
    pub nodes_emptied: Vec<NodeId>,
}

/// Capacity a node quarantine is holding, so the lift can return exactly
/// what was taken.
#[derive(Debug, Clone)]
struct QuarantineHold {
    /// First slot of the hold.
    from: Slot,
    /// Held samples per slot `from..horizon`.
    compute: Vec<u64>,
    /// Held memory units per slot `from..horizon`.
    mem: Vec<u64>,
}

/// Per-`(k, t)` residual-capacity tracker.
#[derive(Debug, Clone)]
pub struct CapacityLedger {
    nodes: usize,
    horizon: usize,
    /// `C_kp` per node.
    compute_cap: Vec<u64>,
    /// `C_km − r_b` per node, in fixed-point units.
    adapter_mem_cap: Vec<u64>,
    /// Committed samples per `(k, t)`, row-major `k * horizon + t`.
    compute_used: Vec<u64>,
    /// Committed adapter memory units per `(k, t)`.
    mem_used: Vec<u64>,
    /// Shared base-model replica size `r_b` in GB (informational; already
    /// subtracted from `adapter_mem_cap`).
    base_model_gb: f64,
    /// Active quarantine per node (`None` = node up).
    quarantines: Vec<Option<QuarantineHold>>,
}

impl CapacityLedger {
    /// Builds an empty ledger matching `scenario`'s cluster.
    #[must_use]
    pub fn new(scenario: &Scenario) -> Self {
        let nodes = scenario.nodes.len();
        let horizon = scenario.horizon;
        CapacityLedger {
            nodes,
            horizon,
            compute_cap: scenario.nodes.iter().map(|n| n.compute_capacity).collect(),
            adapter_mem_cap: (0..nodes)
                .map(|k| mem_units(scenario.adapter_memory(k)))
                .collect(),
            compute_used: vec![0; nodes * horizon],
            mem_used: vec![0; nodes * horizon],
            base_model_gb: scenario.base_model_gb,
            quarantines: vec![None; nodes],
        }
    }

    #[inline]
    fn idx(&self, k: NodeId, t: Slot) -> usize {
        k * self.horizon + t
    }

    /// Number of nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Horizon in slots.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Residual computation capacity on `(k, t)` in samples.
    #[must_use]
    pub fn residual_compute(&self, k: NodeId, t: Slot) -> u64 {
        self.compute_cap[k] - self.compute_used[self.idx(k, t)]
    }

    /// Residual adapter memory on `(k, t)` in GB.
    #[must_use]
    pub fn residual_memory(&self, k: NodeId, t: Slot) -> f64 {
        mem_gb(self.adapter_mem_cap[k] - self.mem_used[self.idx(k, t)])
    }

    /// Committed computation on `(k, t)`.
    #[must_use]
    pub fn compute_used(&self, k: NodeId, t: Slot) -> u64 {
        self.compute_used[self.idx(k, t)]
    }

    /// Committed adapter memory on `(k, t)`.
    #[must_use]
    pub fn memory_used(&self, k: NodeId, t: Slot) -> f64 {
        mem_gb(self.mem_used[self.idx(k, t)])
    }

    /// Compute capacity `C_kp` of node `k`.
    #[must_use]
    pub fn compute_capacity(&self, k: NodeId) -> u64 {
        self.compute_cap[k]
    }

    /// Adapter memory capacity `C_km − r_b` of node `k`.
    #[must_use]
    pub fn adapter_capacity(&self, k: NodeId) -> f64 {
        mem_gb(self.adapter_mem_cap[k])
    }

    /// Shared base-model replica size `r_b` in GB. One replica per node is
    /// permanently resident: it is excluded from [`adapter_capacity`]
    /// rather than tracked per cell, so releases can never hand it back.
    ///
    /// [`adapter_capacity`]: CapacityLedger::adapter_capacity
    #[must_use]
    pub fn base_model_gb(&self) -> f64 {
        self.base_model_gb
    }

    /// Whether node `k` has zero committed compute and memory on every
    /// slot (only the base replica remains).
    #[must_use]
    pub fn is_node_empty(&self, k: NodeId) -> bool {
        let row = k * self.horizon;
        self.compute_used[row..row + self.horizon]
            .iter()
            .all(|&c| c == 0)
            && self.mem_used[row..row + self.horizon]
                .iter()
                .all(|&m| m == 0)
    }

    /// Whether placing `task` on `(k, t)` fits the residual capacity.
    #[must_use]
    pub fn fits(&self, task: &Task, k: NodeId, t: Slot) -> bool {
        if k >= self.nodes || t >= self.horizon {
            return false;
        }
        task.rate(k) <= self.residual_compute(k, t)
            && mem_units(task.memory_gb) <= self.adapter_mem_cap[k] - self.mem_used[self.idx(k, t)]
    }

    /// Batched [`CapacityLedger::fits`] over the slot span `[start, end]`
    /// of one node row.
    ///
    /// Clears `out` and pushes one flag per slot (`out[j]` answers for slot
    /// `start + j`), with the per-call rate/capacity lookups hoisted out of
    /// the slot loop. The per-arrival delta-grid builder calls this once
    /// per `(task, node)` instead of `fits` once per `(task, node, slot)`.
    pub fn fits_span(&self, task: &Task, k: NodeId, start: Slot, end: Slot, out: &mut Vec<bool>) {
        out.clear();
        if start > end {
            return;
        }
        let span = end - start + 1;
        if k >= self.nodes {
            out.resize(span, false);
            return;
        }
        let rate = task.rate(k);
        let mem = mem_units(task.memory_gb);
        let compute_cap = self.compute_cap[k];
        let mem_cap = self.adapter_mem_cap[k];
        let row = k * self.horizon;
        out.reserve(span);
        for t in start..=end {
            let ok = t < self.horizon
                && rate <= compute_cap - self.compute_used[row + t]
                && mem <= mem_cap - self.mem_used[row + t];
            out.push(ok);
        }
    }

    /// Whether every placement in a slice fits the residual capacity.
    #[must_use]
    pub fn fits_all(&self, task: &Task, placements: &[(NodeId, Slot)]) -> bool {
        placements.iter().all(|&(k, t)| self.fits(task, k, t))
    }

    /// Whether an entire schedule fits — the Algorithm 1 line 8
    /// "enough resources" check.
    #[must_use]
    pub fn fits_schedule(&self, task: &Task, schedule: &Schedule) -> bool {
        self.fits_all(task, &schedule.placements)
    }

    /// Commits a schedule, consuming capacity on every placement.
    ///
    /// # Errors
    /// Fails atomically (no partial commit) if any placement overflows.
    pub fn commit(&mut self, task: &Task, schedule: &Schedule) -> Result<(), LedgerError> {
        let mem = mem_units(task.memory_gb);
        // Validate first so the commit is atomic.
        for &(k, t) in &schedule.placements {
            if k >= self.nodes || t >= self.horizon {
                return Err(LedgerError::OutOfRange { node: k, slot: t });
            }
            let i = self.idx(k, t);
            let rate = task.rate(k);
            if self.compute_used[i] + rate > self.compute_cap[k] {
                return Err(LedgerError::ComputeOverflow {
                    node: k,
                    slot: t,
                    used: self.compute_used[i],
                    adding: rate,
                    capacity: self.compute_cap[k],
                });
            }
            if self.mem_used[i] + mem > self.adapter_mem_cap[k] {
                return Err(LedgerError::MemoryOverflow {
                    node: k,
                    slot: t,
                    used_gb: mem_gb(self.mem_used[i]),
                    adding_gb: task.memory_gb,
                    capacity_gb: mem_gb(self.adapter_mem_cap[k]),
                });
            }
        }
        for &(k, t) in &schedule.placements {
            let i = self.idx(k, t);
            self.compute_used[i] += task.rate(k);
            self.mem_used[i] += mem;
        }
        Ok(())
    }

    /// Returns `task`'s resources on the given placements to the pool —
    /// the rollback of the corresponding [`CapacityLedger::commit`]
    /// (possibly a suffix of it: a failure releases only the not-yet-
    /// executed cells). Integer accounting makes the round trip exact:
    /// after `commit` + `release` every residual is bit-identical to the
    /// pre-commit state.
    ///
    /// # Errors
    /// Fails atomically if any placement is out of range or holds less
    /// than the task would return ([`LedgerError::ReleaseUnderflow`] —
    /// releasing something never committed).
    pub fn release_placements(
        &mut self,
        task: &Task,
        placements: &[(NodeId, Slot)],
    ) -> Result<Released, LedgerError> {
        let mem = mem_units(task.memory_gb);
        for &(k, t) in placements {
            if k >= self.nodes || t >= self.horizon {
                return Err(LedgerError::OutOfRange { node: k, slot: t });
            }
            let i = self.idx(k, t);
            if self.compute_used[i] < task.rate(k) || self.mem_used[i] < mem {
                return Err(LedgerError::ReleaseUnderflow { node: k, slot: t });
            }
        }
        let mut freed = Released {
            compute: 0,
            memory_gb: 0.0,
            cells: placements.len(),
            nodes_emptied: Vec::new(),
        };
        let mut mem_freed_units = 0u64;
        let mut touched: Vec<NodeId> = Vec::new();
        for &(k, t) in placements {
            let i = self.idx(k, t);
            self.compute_used[i] -= task.rate(k);
            self.mem_used[i] -= mem;
            freed.compute += task.rate(k);
            mem_freed_units += mem;
            if !touched.contains(&k) {
                touched.push(k);
            }
        }
        freed.memory_gb = mem_gb(mem_freed_units);
        touched.sort_unstable();
        freed.nodes_emptied = touched
            .into_iter()
            .filter(|&k| self.is_node_empty(k))
            .collect();
        Ok(freed)
    }

    /// [`CapacityLedger::release_placements`] over a whole schedule.
    ///
    /// # Errors
    /// Same as `release_placements`.
    pub fn release(&mut self, task: &Task, schedule: &Schedule) -> Result<Released, LedgerError> {
        self.release_placements(task, &schedule.placements)
    }

    /// Takes capacity out of the pool without a task — degradations and
    /// other operator holds. The amounts count as used (and are *not*
    /// returned by any release), so the DP and `fits` checks see a
    /// smaller cell.
    ///
    /// # Errors
    /// Fails if `(k, t)` is out of range or lacks the residual.
    pub fn reserve(
        &mut self,
        k: NodeId,
        t: Slot,
        compute: u64,
        memory_gb: f64,
    ) -> Result<(), LedgerError> {
        if k >= self.nodes || t >= self.horizon {
            return Err(LedgerError::OutOfRange { node: k, slot: t });
        }
        let i = self.idx(k, t);
        if self.compute_used[i] + compute > self.compute_cap[k] {
            return Err(LedgerError::ComputeOverflow {
                node: k,
                slot: t,
                used: self.compute_used[i],
                adding: compute,
                capacity: self.compute_cap[k],
            });
        }
        let mem = mem_units(memory_gb);
        if self.mem_used[i] + mem > self.adapter_mem_cap[k] {
            return Err(LedgerError::MemoryOverflow {
                node: k,
                slot: t,
                used_gb: mem_gb(self.mem_used[i]),
                adding_gb: memory_gb,
                capacity_gb: mem_gb(self.adapter_mem_cap[k]),
            });
        }
        self.compute_used[i] += compute;
        self.mem_used[i] += mem;
        Ok(())
    }

    /// Marks node `k` as down from slot `from` on: every residual sample
    /// and memory unit on cells `(k, from..)` is held, so the masked DP
    /// and all `fits` checks treat the node as saturated. Call *after*
    /// releasing disrupted tasks so the freed capacity is captured too.
    ///
    /// Returns `false` (and does nothing) if `k` is out of range or
    /// already quarantined.
    pub fn quarantine(&mut self, k: NodeId, from: Slot) -> bool {
        if k >= self.nodes || self.quarantines[k].is_some() {
            return false;
        }
        let from = from.min(self.horizon);
        let row = k * self.horizon;
        let mut compute = Vec::with_capacity(self.horizon - from);
        let mut mem = Vec::with_capacity(self.horizon - from);
        for t in from..self.horizon {
            let c = self.compute_cap[k] - self.compute_used[row + t];
            let m = self.adapter_mem_cap[k] - self.mem_used[row + t];
            self.compute_used[row + t] += c;
            self.mem_used[row + t] += m;
            compute.push(c);
            mem.push(m);
        }
        self.quarantines[k] = Some(QuarantineHold { from, compute, mem });
        true
    }

    /// Lifts the quarantine on node `k`, returning exactly the capacity
    /// the quarantine held (slots other tasks filled in the meantime —
    /// impossible while held, but robust regardless — keep their load).
    /// Returns `false` if the node was not quarantined.
    pub fn lift_quarantine(&mut self, k: NodeId) -> bool {
        let Some(hold) = self.quarantines.get_mut(k).and_then(Option::take) else {
            return false;
        };
        let row = k * self.horizon;
        for (j, t) in (hold.from..self.horizon).enumerate() {
            self.compute_used[row + t] -= hold.compute[j];
            self.mem_used[row + t] -= hold.mem[j];
        }
        true
    }

    /// Whether node `k` is currently quarantined.
    #[must_use]
    pub fn is_quarantined(&self, k: NodeId) -> bool {
        k < self.nodes && self.quarantines[k].is_some()
    }

    /// Mean compute utilization across all `(k, t)` cells, in `[0, 1]`.
    #[must_use]
    pub fn mean_compute_utilization(&self) -> f64 {
        if self.nodes == 0 || self.horizon == 0 {
            return 0.0;
        }
        let mut total = 0.0;
        for k in 0..self.nodes {
            let cap = self.compute_cap[k] as f64;
            if cap == 0.0 {
                continue;
            }
            for t in 0..self.horizon {
                total += self.compute_used[self.idx(k, t)] as f64 / cap;
            }
        }
        total / (self.nodes * self.horizon) as f64
    }

    /// FNV-1a digest of the complete ledger state: every `(k, t)` cell's
    /// committed compute/memory (exact fixed-point words, not floats)
    /// plus all quarantine holds. Two ledgers digest equal iff they hold
    /// byte-identical state, so determinism suites can assert that
    /// multi-worker sharded runs replay the single-thread schedule
    /// bit-for-bit without exposing the internal vectors.
    #[must_use]
    pub fn state_digest(&self) -> u64 {
        const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = OFFSET;
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.nodes as u64);
        mix(self.horizon as u64);
        for &w in self.compute_used.iter().chain(self.mem_used.iter()) {
            mix(w);
        }
        for hold in &self.quarantines {
            match hold {
                None => mix(u64::MAX),
                Some(q) => {
                    mix(q.from as u64);
                    for &w in q.compute.iter().chain(q.mem.iter()) {
                        mix(w);
                    }
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdftsp_types::{CostGrid, GpuModel, NodeSpec, TaskBuilder, VendorQuote};

    fn scenario() -> Scenario {
        Scenario {
            horizon: 6,
            base_model_gb: 2.0,
            nodes: vec![
                NodeSpec::new(0, GpuModel::A100_80, 1000),
                NodeSpec::new(1, GpuModel::A40_48, 400),
            ],
            tasks: vec![],
            quotes: vec![],
            cost: CostGrid::flat(2, 6, 0.1),
        }
    }

    fn task(rate0: u64, rate1: u64, mem: f64) -> Task {
        TaskBuilder::new(0, 0, 5)
            .dataset(10_000)
            .memory_gb(mem)
            .rates(vec![rate0, rate1])
            .build()
            .unwrap()
    }

    #[test]
    fn fresh_ledger_has_full_residuals() {
        let l = CapacityLedger::new(&scenario());
        assert_eq!(l.residual_compute(0, 0), 1000);
        assert_eq!(l.residual_compute(1, 5), 400);
        assert!((l.residual_memory(0, 0) - 78.0).abs() < 1e-9);
        assert!((l.residual_memory(1, 0) - 46.0).abs() < 1e-9);
        assert!((l.base_model_gb() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn commit_consumes_capacity() {
        let mut l = CapacityLedger::new(&scenario());
        let t = task(600, 200, 10.0);
        let s = Schedule::new(0, VendorQuote::none(), vec![(0, 1), (0, 2)]);
        l.commit(&t, &s).unwrap();
        assert_eq!(l.residual_compute(0, 1), 400);
        assert_eq!(l.residual_compute(0, 2), 400);
        assert_eq!(l.residual_compute(0, 0), 1000);
        assert!((l.residual_memory(0, 1) - 68.0).abs() < 1e-9);
    }

    #[test]
    fn compute_overflow_is_atomic() {
        let mut l = CapacityLedger::new(&scenario());
        let t = task(600, 200, 1.0);
        l.commit(&t, &Schedule::new(0, VendorQuote::none(), vec![(0, 1)]))
            .unwrap();
        // Second commit: slot 0 fits (600), slot 1 would overflow (1200).
        let s = Schedule::new(0, VendorQuote::none(), vec![(0, 0), (0, 1)]);
        let err = l.commit(&t, &s).unwrap_err();
        assert!(matches!(err, LedgerError::ComputeOverflow { slot: 1, .. }));
        // Atomicity: slot 0 must not have been charged.
        assert_eq!(l.residual_compute(0, 0), 1000);
    }

    #[test]
    fn memory_overflow_detected() {
        let mut l = CapacityLedger::new(&scenario());
        // Node 1: 48 - 2 = 46 GB adapter space.
        let t = task(100, 100, 30.0);
        l.commit(&t, &Schedule::new(0, VendorQuote::none(), vec![(1, 0)]))
            .unwrap();
        let err = l
            .commit(&t, &Schedule::new(0, VendorQuote::none(), vec![(1, 0)]))
            .unwrap_err();
        assert!(matches!(err, LedgerError::MemoryOverflow { .. }));
    }

    #[test]
    fn out_of_range_placement_rejected() {
        let mut l = CapacityLedger::new(&scenario());
        let t = task(1, 1, 1.0);
        let s = Schedule::new(0, VendorQuote::none(), vec![(0, 6)]);
        assert!(matches!(
            l.commit(&t, &s),
            Err(LedgerError::OutOfRange { slot: 6, .. })
        ));
        let s = Schedule::new(0, VendorQuote::none(), vec![(2, 0)]);
        assert!(matches!(
            l.commit(&t, &s),
            Err(LedgerError::OutOfRange { node: 2, .. })
        ));
    }

    #[test]
    fn fits_matches_commit_success() {
        let mut l = CapacityLedger::new(&scenario());
        let big = task(1000, 400, 46.0);
        let s = Schedule::new(0, VendorQuote::none(), vec![(1, 3)]);
        assert!(l.fits_schedule(&big, &s));
        l.commit(&big, &s).unwrap();
        assert!(!l.fits_schedule(&big, &s));
        assert!(!l.fits(&big, 1, 3));
        // Exact-fill is allowed (constraints are ≤).
        assert_eq!(l.residual_compute(1, 3), 0);
    }

    #[test]
    fn mean_utilization_reflects_committed_work() {
        let mut l = CapacityLedger::new(&scenario());
        assert_eq!(l.mean_compute_utilization(), 0.0);
        let t = task(1000, 400, 1.0);
        // Fill node 0 completely for all 6 slots.
        let s = Schedule::new(
            0,
            VendorQuote::none(),
            (0..6).map(|t| (0usize, t)).collect(),
        );
        l.commit(&t, &s).unwrap();
        // Node 0 fully used, node 1 idle → 0.5 mean.
        assert!((l.mean_compute_utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fits_span_matches_pointwise_fits() {
        let mut l = CapacityLedger::new(&scenario());
        // Saturate a few cells with mixed compute/memory pressure.
        let fat = task(800, 350, 40.0);
        l.commit(
            &fat,
            &Schedule::new(0, VendorQuote::none(), vec![(0, 1), (1, 3)]),
        )
        .unwrap();
        let probe = task(300, 100, 10.0);
        let mut out = Vec::new();
        for k in 0..2 {
            l.fits_span(&probe, k, 0, 5, &mut out);
            assert_eq!(out.len(), 6);
            for (t, &got) in out.iter().enumerate() {
                assert_eq!(got, l.fits(&probe, k, t), "node {k} slot {t}");
            }
        }
        // Spans that run past the horizon mirror fits' out-of-range false.
        l.fits_span(&probe, 0, 4, 7, &mut out);
        assert_eq!(
            out,
            vec![l.fits(&probe, 0, 4), l.fits(&probe, 0, 5), false, false]
        );
        // Out-of-range node: all false, span length preserved.
        l.fits_span(&probe, 9, 0, 2, &mut out);
        assert_eq!(out, vec![false, false, false]);
        // Inverted span: empty.
        l.fits_span(&probe, 0, 3, 2, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn fits_all_agrees_with_fits_schedule() {
        let mut l = CapacityLedger::new(&scenario());
        let t = task(600, 300, 20.0);
        let placements = vec![(0usize, 0usize), (1, 2), (0, 4)];
        let s = Schedule::new(0, VendorQuote::none(), placements.clone());
        assert_eq!(l.fits_all(&t, &placements), l.fits_schedule(&t, &s));
        l.commit(&t, &s).unwrap();
        l.commit(&t, &Schedule::new(0, VendorQuote::none(), vec![(1, 2)]))
            .unwrap_err();
        assert!(!l.fits_all(&t, &placements));
        assert_eq!(l.fits_all(&t, &placements), l.fits_schedule(&t, &s));
    }

    #[test]
    fn many_small_tasks_share_a_node_slot() {
        // Multi-LoRA co-location: several tasks on the same (k, t).
        let mut l = CapacityLedger::new(&scenario());
        let t = task(250, 100, 5.0);
        for _ in 0..4 {
            l.commit(&t, &Schedule::new(0, VendorQuote::none(), vec![(0, 2)]))
                .unwrap();
        }
        assert_eq!(l.residual_compute(0, 2), 0);
        assert!((l.memory_used(0, 2) - 20.0).abs() < 1e-9);
        // A fifth does not fit.
        assert!(!l.fits(&t, 0, 2));
    }

    /// Snapshot of every residual, for exact round-trip comparisons.
    fn residual_snapshot(l: &CapacityLedger) -> Vec<(u64, u64)> {
        let mut snap = Vec::new();
        for k in 0..l.nodes() {
            for t in 0..l.horizon() {
                snap.push((
                    l.residual_compute(k, t),
                    // Compare memory in exact units via bit pattern of the
                    // derived GB value (units → GB is deterministic).
                    l.residual_memory(k, t).to_bits(),
                ));
            }
        }
        snap
    }

    #[test]
    fn commit_release_round_trip_is_exact() {
        let mut l = CapacityLedger::new(&scenario());
        // A non-dyadic memory size that would leave f64 dust.
        let t = task(123, 77, 4.7 / 3.0);
        let before = residual_snapshot(&l);
        let s = Schedule::new(0, VendorQuote::none(), vec![(0, 0), (0, 3), (1, 2)]);
        l.commit(&t, &s).unwrap();
        let freed = l.release(&t, &s).unwrap();
        assert_eq!(residual_snapshot(&l), before);
        assert_eq!(freed.compute, 123 + 123 + 77);
        assert_eq!(freed.cells, 3);
        // Both nodes were touched and both became empty.
        assert_eq!(freed.nodes_emptied, vec![0, 1]);
        assert!(l.is_node_empty(0) && l.is_node_empty(1));
    }

    #[test]
    fn partial_release_frees_only_the_suffix() {
        let mut l = CapacityLedger::new(&scenario());
        let t = task(600, 200, 10.0);
        let s = Schedule::new(0, VendorQuote::none(), vec![(0, 1), (0, 2), (0, 4)]);
        l.commit(&t, &s).unwrap();
        // Release only the not-yet-executed tail (slots ≥ 2).
        let freed = l.release_placements(&t, &[(0, 2), (0, 4)]).unwrap();
        assert_eq!(freed.compute, 1200);
        assert!((freed.memory_gb - 20.0).abs() < 1e-9);
        assert!(freed.nodes_emptied.is_empty(), "slot 1 is still held");
        assert_eq!(l.residual_compute(0, 1), 400);
        assert_eq!(l.residual_compute(0, 2), 1000);
        assert_eq!(l.residual_compute(0, 4), 1000);
    }

    #[test]
    fn release_underflow_is_atomic() {
        let mut l = CapacityLedger::new(&scenario());
        let t = task(600, 200, 10.0);
        l.commit(&t, &Schedule::new(0, VendorQuote::none(), vec![(0, 1)]))
            .unwrap();
        // Slot 1 is committed, slot 2 is not → underflow on slot 2, and
        // slot 1 must keep its charge.
        let err = l.release_placements(&t, &[(0, 1), (0, 2)]).unwrap_err();
        assert!(matches!(
            err,
            LedgerError::ReleaseUnderflow { node: 0, slot: 2 }
        ));
        assert_eq!(l.residual_compute(0, 1), 400);
        // Out-of-range release is refused too.
        assert!(matches!(
            l.release_placements(&t, &[(0, 99)]),
            Err(LedgerError::OutOfRange { .. })
        ));
    }

    #[test]
    fn reserve_consumes_and_respects_capacity() {
        let mut l = CapacityLedger::new(&scenario());
        l.reserve(0, 2, 400, 10.0).unwrap();
        assert_eq!(l.residual_compute(0, 2), 600);
        assert!((l.residual_memory(0, 2) - 68.0).abs() < 1e-9);
        assert!(matches!(
            l.reserve(0, 2, 700, 0.0),
            Err(LedgerError::ComputeOverflow { .. })
        ));
        assert!(matches!(
            l.reserve(0, 2, 0, 80.0),
            Err(LedgerError::MemoryOverflow { .. })
        ));
        assert!(matches!(
            l.reserve(5, 0, 1, 0.0),
            Err(LedgerError::OutOfRange { .. })
        ));
    }

    #[test]
    fn quarantine_saturates_and_lift_restores_exactly() {
        let mut l = CapacityLedger::new(&scenario());
        let t = task(600, 200, 10.0);
        let s = Schedule::new(0, VendorQuote::none(), vec![(0, 1), (0, 3)]);
        l.commit(&t, &s).unwrap();
        let before = residual_snapshot(&l);
        assert!(l.quarantine(0, 2));
        assert!(l.is_quarantined(0));
        // Double quarantine refused; out-of-range refused.
        assert!(!l.quarantine(0, 0));
        assert!(!l.quarantine(7, 0));
        // From slot 2 on, nothing fits on node 0; earlier slots unchanged.
        let probe = task(1, 1, 0.001);
        for tt in 2..6 {
            assert!(!l.fits(&probe, 0, tt), "slot {tt}");
            assert_eq!(l.residual_compute(0, tt), 0);
        }
        assert!(l.fits(&probe, 0, 0));
        assert!(l.fits(&probe, 1, 4), "other nodes unaffected");
        assert!(l.lift_quarantine(0));
        assert!(!l.is_quarantined(0));
        assert!(!l.lift_quarantine(0), "second lift is a no-op");
        assert_eq!(residual_snapshot(&l), before);
    }

    #[test]
    fn quarantine_then_release_then_lift_keeps_books_consistent() {
        // The recovery order the fault driver uses: release the disrupted
        // suffix FIRST, then quarantine — so the freed capacity is inside
        // the hold and the node truly offers nothing while down.
        let mut l = CapacityLedger::new(&scenario());
        let t = task(600, 200, 10.0);
        let s = Schedule::new(0, VendorQuote::none(), vec![(0, 1), (0, 3), (0, 4)]);
        l.commit(&t, &s).unwrap();
        let fail_slot = 2;
        l.release_placements(&t, &[(0, 3), (0, 4)]).unwrap();
        assert!(l.quarantine(0, fail_slot));
        for tt in fail_slot..6 {
            assert_eq!(l.residual_compute(0, tt), 0);
            assert_eq!(l.residual_memory(0, tt), 0.0);
        }
        assert!(l.lift_quarantine(0));
        // After recovery the released suffix is free again, the executed
        // prefix (slot 1) still charged.
        assert_eq!(l.residual_compute(0, 3), 1000);
        assert_eq!(l.residual_compute(0, 1), 400);
    }
}
