//! Capacity accounting for constraints (4f) and (4g).
//!
//! The ledger tracks, per `(node, slot)` cell, the computation already
//! committed (`Σ s_ik x_ikt`, in samples) and the adapter memory already
//! committed (`Σ r_i x_ikt`, in GB). Memory is compared against
//! `C_km − r_b`: one base-model replica is always reserved per node, the
//! conservative reading of (4g) used throughout the paper (up to one
//! replica per node, shared by all co-located LoRA tasks).

use pdftsp_types::{NodeId, Scenario, Schedule, Slot, Task};

/// Why a commit was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerError {
    /// Computation capacity would be exceeded on `(node, slot)`.
    ComputeOverflow {
        node: NodeId,
        slot: Slot,
        used: u64,
        adding: u64,
        capacity: u64,
    },
    /// Adapter memory would be exceeded on `(node, slot)`.
    MemoryOverflow {
        node: NodeId,
        slot: Slot,
        used_gb: f64,
        adding_gb: f64,
        capacity_gb: f64,
    },
    /// The schedule references an out-of-range node or slot.
    OutOfRange { node: NodeId, slot: Slot },
}

impl std::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LedgerError::ComputeOverflow {
                node,
                slot,
                used,
                adding,
                capacity,
            } => write!(
                f,
                "compute overflow on node {node} slot {slot}: {used}+{adding} > {capacity}"
            ),
            LedgerError::MemoryOverflow {
                node,
                slot,
                used_gb,
                adding_gb,
                capacity_gb,
            } => write!(
                f,
                "memory overflow on node {node} slot {slot}: {used_gb}+{adding_gb} > {capacity_gb} GB"
            ),
            LedgerError::OutOfRange { node, slot } => {
                write!(f, "placement (node {node}, slot {slot}) out of range")
            }
        }
    }
}

impl std::error::Error for LedgerError {}

/// Tolerance for floating-point memory accumulation.
const MEM_EPS: f64 = 1e-9;

/// Per-`(k, t)` residual-capacity tracker.
#[derive(Debug, Clone)]
pub struct CapacityLedger {
    nodes: usize,
    horizon: usize,
    /// `C_kp` per node.
    compute_cap: Vec<u64>,
    /// `C_km − r_b` per node.
    adapter_mem_cap: Vec<f64>,
    /// Committed samples per `(k, t)`, row-major `k * horizon + t`.
    compute_used: Vec<u64>,
    /// Committed adapter GB per `(k, t)`.
    mem_used: Vec<f64>,
}

impl CapacityLedger {
    /// Builds an empty ledger matching `scenario`'s cluster.
    #[must_use]
    pub fn new(scenario: &Scenario) -> Self {
        let nodes = scenario.nodes.len();
        let horizon = scenario.horizon;
        CapacityLedger {
            nodes,
            horizon,
            compute_cap: scenario.nodes.iter().map(|n| n.compute_capacity).collect(),
            adapter_mem_cap: (0..nodes).map(|k| scenario.adapter_memory(k)).collect(),
            compute_used: vec![0; nodes * horizon],
            mem_used: vec![0.0; nodes * horizon],
        }
    }

    #[inline]
    fn idx(&self, k: NodeId, t: Slot) -> usize {
        k * self.horizon + t
    }

    /// Number of nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Horizon in slots.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Residual computation capacity on `(k, t)` in samples.
    #[must_use]
    pub fn residual_compute(&self, k: NodeId, t: Slot) -> u64 {
        self.compute_cap[k] - self.compute_used[self.idx(k, t)]
    }

    /// Residual adapter memory on `(k, t)` in GB.
    #[must_use]
    pub fn residual_memory(&self, k: NodeId, t: Slot) -> f64 {
        self.adapter_mem_cap[k] - self.mem_used[self.idx(k, t)]
    }

    /// Committed computation on `(k, t)`.
    #[must_use]
    pub fn compute_used(&self, k: NodeId, t: Slot) -> u64 {
        self.compute_used[self.idx(k, t)]
    }

    /// Committed adapter memory on `(k, t)`.
    #[must_use]
    pub fn memory_used(&self, k: NodeId, t: Slot) -> f64 {
        self.mem_used[self.idx(k, t)]
    }

    /// Compute capacity `C_kp` of node `k`.
    #[must_use]
    pub fn compute_capacity(&self, k: NodeId) -> u64 {
        self.compute_cap[k]
    }

    /// Adapter memory capacity `C_km − r_b` of node `k`.
    #[must_use]
    pub fn adapter_capacity(&self, k: NodeId) -> f64 {
        self.adapter_mem_cap[k]
    }

    /// Whether placing `task` on `(k, t)` fits the residual capacity.
    #[must_use]
    pub fn fits(&self, task: &Task, k: NodeId, t: Slot) -> bool {
        if k >= self.nodes || t >= self.horizon {
            return false;
        }
        task.rate(k) <= self.residual_compute(k, t)
            && task.memory_gb <= self.residual_memory(k, t) + MEM_EPS
    }

    /// Batched [`CapacityLedger::fits`] over the slot span `[start, end]`
    /// of one node row.
    ///
    /// Clears `out` and pushes one flag per slot (`out[j]` answers for slot
    /// `start + j`), with the per-call rate/capacity lookups hoisted out of
    /// the slot loop. The per-arrival delta-grid builder calls this once
    /// per `(task, node)` instead of `fits` once per `(task, node, slot)`.
    pub fn fits_span(&self, task: &Task, k: NodeId, start: Slot, end: Slot, out: &mut Vec<bool>) {
        out.clear();
        if start > end {
            return;
        }
        let span = end - start + 1;
        if k >= self.nodes {
            out.resize(span, false);
            return;
        }
        let rate = task.rate(k);
        let mem = task.memory_gb;
        let compute_cap = self.compute_cap[k];
        let mem_cap = self.adapter_mem_cap[k];
        let row = k * self.horizon;
        out.reserve(span);
        for t in start..=end {
            let ok = t < self.horizon
                && rate <= compute_cap - self.compute_used[row + t]
                && mem <= mem_cap - self.mem_used[row + t] + MEM_EPS;
            out.push(ok);
        }
    }

    /// Whether every placement in a slice fits the residual capacity.
    #[must_use]
    pub fn fits_all(&self, task: &Task, placements: &[(NodeId, Slot)]) -> bool {
        placements.iter().all(|&(k, t)| self.fits(task, k, t))
    }

    /// Whether an entire schedule fits — the Algorithm 1 line 8
    /// "enough resources" check.
    #[must_use]
    pub fn fits_schedule(&self, task: &Task, schedule: &Schedule) -> bool {
        self.fits_all(task, &schedule.placements)
    }

    /// Commits a schedule, consuming capacity on every placement.
    ///
    /// # Errors
    /// Fails atomically (no partial commit) if any placement overflows.
    pub fn commit(&mut self, task: &Task, schedule: &Schedule) -> Result<(), LedgerError> {
        // Validate first so the commit is atomic.
        for &(k, t) in &schedule.placements {
            if k >= self.nodes || t >= self.horizon {
                return Err(LedgerError::OutOfRange { node: k, slot: t });
            }
            let i = self.idx(k, t);
            let rate = task.rate(k);
            if self.compute_used[i] + rate > self.compute_cap[k] {
                return Err(LedgerError::ComputeOverflow {
                    node: k,
                    slot: t,
                    used: self.compute_used[i],
                    adding: rate,
                    capacity: self.compute_cap[k],
                });
            }
            if self.mem_used[i] + task.memory_gb > self.adapter_mem_cap[k] + MEM_EPS {
                return Err(LedgerError::MemoryOverflow {
                    node: k,
                    slot: t,
                    used_gb: self.mem_used[i],
                    adding_gb: task.memory_gb,
                    capacity_gb: self.adapter_mem_cap[k],
                });
            }
        }
        for &(k, t) in &schedule.placements {
            let i = self.idx(k, t);
            self.compute_used[i] += task.rate(k);
            self.mem_used[i] += task.memory_gb;
        }
        Ok(())
    }

    /// Mean compute utilization across all `(k, t)` cells, in `[0, 1]`.
    #[must_use]
    pub fn mean_compute_utilization(&self) -> f64 {
        if self.nodes == 0 || self.horizon == 0 {
            return 0.0;
        }
        let mut total = 0.0;
        for k in 0..self.nodes {
            let cap = self.compute_cap[k] as f64;
            if cap == 0.0 {
                continue;
            }
            for t in 0..self.horizon {
                total += self.compute_used[self.idx(k, t)] as f64 / cap;
            }
        }
        total / (self.nodes * self.horizon) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdftsp_types::{CostGrid, GpuModel, NodeSpec, TaskBuilder, VendorQuote};

    fn scenario() -> Scenario {
        Scenario {
            horizon: 6,
            base_model_gb: 2.0,
            nodes: vec![
                NodeSpec::new(0, GpuModel::A100_80, 1000),
                NodeSpec::new(1, GpuModel::A40_48, 400),
            ],
            tasks: vec![],
            quotes: vec![],
            cost: CostGrid::flat(2, 6, 0.1),
        }
    }

    fn task(rate0: u64, rate1: u64, mem: f64) -> Task {
        TaskBuilder::new(0, 0, 5)
            .dataset(10_000)
            .memory_gb(mem)
            .rates(vec![rate0, rate1])
            .build()
            .unwrap()
    }

    #[test]
    fn fresh_ledger_has_full_residuals() {
        let l = CapacityLedger::new(&scenario());
        assert_eq!(l.residual_compute(0, 0), 1000);
        assert_eq!(l.residual_compute(1, 5), 400);
        assert!((l.residual_memory(0, 0) - 78.0).abs() < 1e-9);
        assert!((l.residual_memory(1, 0) - 46.0).abs() < 1e-9);
    }

    #[test]
    fn commit_consumes_capacity() {
        let mut l = CapacityLedger::new(&scenario());
        let t = task(600, 200, 10.0);
        let s = Schedule::new(0, VendorQuote::none(), vec![(0, 1), (0, 2)]);
        l.commit(&t, &s).unwrap();
        assert_eq!(l.residual_compute(0, 1), 400);
        assert_eq!(l.residual_compute(0, 2), 400);
        assert_eq!(l.residual_compute(0, 0), 1000);
        assert!((l.residual_memory(0, 1) - 68.0).abs() < 1e-9);
    }

    #[test]
    fn compute_overflow_is_atomic() {
        let mut l = CapacityLedger::new(&scenario());
        let t = task(600, 200, 1.0);
        l.commit(&t, &Schedule::new(0, VendorQuote::none(), vec![(0, 1)]))
            .unwrap();
        // Second commit: slot 0 fits (600), slot 1 would overflow (1200).
        let s = Schedule::new(0, VendorQuote::none(), vec![(0, 0), (0, 1)]);
        let err = l.commit(&t, &s).unwrap_err();
        assert!(matches!(err, LedgerError::ComputeOverflow { slot: 1, .. }));
        // Atomicity: slot 0 must not have been charged.
        assert_eq!(l.residual_compute(0, 0), 1000);
    }

    #[test]
    fn memory_overflow_detected() {
        let mut l = CapacityLedger::new(&scenario());
        // Node 1: 48 - 2 = 46 GB adapter space.
        let t = task(100, 100, 30.0);
        l.commit(&t, &Schedule::new(0, VendorQuote::none(), vec![(1, 0)]))
            .unwrap();
        let err = l
            .commit(&t, &Schedule::new(0, VendorQuote::none(), vec![(1, 0)]))
            .unwrap_err();
        assert!(matches!(err, LedgerError::MemoryOverflow { .. }));
    }

    #[test]
    fn out_of_range_placement_rejected() {
        let mut l = CapacityLedger::new(&scenario());
        let t = task(1, 1, 1.0);
        let s = Schedule::new(0, VendorQuote::none(), vec![(0, 6)]);
        assert!(matches!(
            l.commit(&t, &s),
            Err(LedgerError::OutOfRange { slot: 6, .. })
        ));
        let s = Schedule::new(0, VendorQuote::none(), vec![(2, 0)]);
        assert!(matches!(
            l.commit(&t, &s),
            Err(LedgerError::OutOfRange { node: 2, .. })
        ));
    }

    #[test]
    fn fits_matches_commit_success() {
        let mut l = CapacityLedger::new(&scenario());
        let big = task(1000, 400, 46.0);
        let s = Schedule::new(0, VendorQuote::none(), vec![(1, 3)]);
        assert!(l.fits_schedule(&big, &s));
        l.commit(&big, &s).unwrap();
        assert!(!l.fits_schedule(&big, &s));
        assert!(!l.fits(&big, 1, 3));
        // Exact-fill is allowed (constraints are ≤).
        assert_eq!(l.residual_compute(1, 3), 0);
    }

    #[test]
    fn mean_utilization_reflects_committed_work() {
        let mut l = CapacityLedger::new(&scenario());
        assert_eq!(l.mean_compute_utilization(), 0.0);
        let t = task(1000, 400, 1.0);
        // Fill node 0 completely for all 6 slots.
        let s = Schedule::new(
            0,
            VendorQuote::none(),
            (0..6).map(|t| (0usize, t)).collect(),
        );
        l.commit(&t, &s).unwrap();
        // Node 0 fully used, node 1 idle → 0.5 mean.
        assert!((l.mean_compute_utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fits_span_matches_pointwise_fits() {
        let mut l = CapacityLedger::new(&scenario());
        // Saturate a few cells with mixed compute/memory pressure.
        let fat = task(800, 350, 40.0);
        l.commit(
            &fat,
            &Schedule::new(0, VendorQuote::none(), vec![(0, 1), (1, 3)]),
        )
        .unwrap();
        let probe = task(300, 100, 10.0);
        let mut out = Vec::new();
        for k in 0..2 {
            l.fits_span(&probe, k, 0, 5, &mut out);
            assert_eq!(out.len(), 6);
            for (t, &got) in out.iter().enumerate() {
                assert_eq!(got, l.fits(&probe, k, t), "node {k} slot {t}");
            }
        }
        // Spans that run past the horizon mirror fits' out-of-range false.
        l.fits_span(&probe, 0, 4, 7, &mut out);
        assert_eq!(
            out,
            vec![l.fits(&probe, 0, 4), l.fits(&probe, 0, 5), false, false]
        );
        // Out-of-range node: all false, span length preserved.
        l.fits_span(&probe, 9, 0, 2, &mut out);
        assert_eq!(out, vec![false, false, false]);
        // Inverted span: empty.
        l.fits_span(&probe, 0, 3, 2, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn fits_all_agrees_with_fits_schedule() {
        let mut l = CapacityLedger::new(&scenario());
        let t = task(600, 300, 20.0);
        let placements = vec![(0usize, 0usize), (1, 2), (0, 4)];
        let s = Schedule::new(0, VendorQuote::none(), placements.clone());
        assert_eq!(l.fits_all(&t, &placements), l.fits_schedule(&t, &s));
        l.commit(&t, &s).unwrap();
        l.commit(&t, &Schedule::new(0, VendorQuote::none(), vec![(1, 2)]))
            .unwrap_err();
        assert!(!l.fits_all(&t, &placements));
        assert_eq!(l.fits_all(&t, &placements), l.fits_schedule(&t, &s));
    }

    #[test]
    fn many_small_tasks_share_a_node_slot() {
        // Multi-LoRA co-location: several tasks on the same (k, t).
        let mut l = CapacityLedger::new(&scenario());
        let t = task(250, 100, 5.0);
        for _ in 0..4 {
            l.commit(&t, &Schedule::new(0, VendorQuote::none(), vec![(0, 2)]))
                .unwrap();
        }
        assert_eq!(l.residual_compute(0, 2), 0);
        assert!((l.memory_used(0, 2) - 20.0).abs() < 1e-9);
        // A fifth does not fit.
        assert!(!l.fits(&t, 0, 2));
    }
}
