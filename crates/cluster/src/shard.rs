//! Node sharding: partitioning a data center into disjoint node ranges.
//!
//! A *shard* owns a contiguous slice of the cluster's nodes. Shards are
//! the unit of parallelism for the sharded auction service
//! (`pdftsp-sim`'s `service` module): each shard runs its own dual grid
//! and ledger slice, so concurrent shards never touch the same state and
//! any worker count replays the single-thread schedule bit-for-bit.
//!
//! The same largest-remainder apportionment that sizes shards also fixes
//! the zone-partition conservation bug: [`apportion`] guarantees the
//! per-part counts sum *exactly* to the total (no `.round().max(1)`
//! over/undershoot), while still giving every positive-weight part at
//! least one node.

use pdftsp_types::NodeId;

/// Errors from [`apportion`] / [`ShardMap`] construction.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardError {
    /// No parts were requested.
    NoParts,
    /// A weight was negative, NaN, or infinite.
    InvalidWeight {
        /// Index of the offending part.
        index: usize,
        /// The offending weight.
        weight: f64,
    },
    /// All weights were zero: there is no way to split proportionally.
    ZeroWeightSum,
    /// Fewer items than positive-weight parts — each part needs at least
    /// one item, so the split cannot conserve the total.
    TooFewItems {
        /// Items available.
        total: usize,
        /// Positive-weight parts requesting at least one item each.
        parts: usize,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ShardError::NoParts => write!(f, "apportionment over zero parts"),
            ShardError::InvalidWeight { index, weight } => {
                write!(
                    f,
                    "weight {weight} at index {index} is not a finite share ≥ 0"
                )
            }
            ShardError::ZeroWeightSum => write!(f, "weights sum to zero; nothing to split"),
            ShardError::TooFewItems { total, parts } => {
                write!(
                    f,
                    "{total} items cannot cover {parts} positive-weight parts"
                )
            }
        }
    }
}

impl std::error::Error for ShardError {}

/// Splits `total` items across `weights.len()` parts proportionally to
/// the weights, using largest-remainder (Hamilton) apportionment with a
/// one-item floor for every positive-weight part.
///
/// Guarantees, unlike independent per-part rounding:
/// * the returned counts sum to **exactly** `total`;
/// * every part with `weight > 0` receives at least one item;
/// * parts with `weight == 0` receive exactly zero items;
/// * the result is deterministic (remainder ties break on lower index).
///
/// # Errors
/// [`ShardError::NoParts`] on an empty weight list,
/// [`ShardError::InvalidWeight`] on a negative/NaN/infinite weight,
/// [`ShardError::ZeroWeightSum`] when every weight is zero, and
/// [`ShardError::TooFewItems`] when `total` is smaller than the number of
/// positive-weight parts.
pub fn apportion(total: usize, weights: &[f64]) -> Result<Vec<usize>, ShardError> {
    if weights.is_empty() {
        return Err(ShardError::NoParts);
    }
    for (index, &weight) in weights.iter().enumerate() {
        if !weight.is_finite() || weight < 0.0 {
            return Err(ShardError::InvalidWeight { index, weight });
        }
    }
    let sum: f64 = weights.iter().sum();
    if sum <= 0.0 {
        return Err(ShardError::ZeroWeightSum);
    }
    let positive = weights.iter().filter(|&&w| w > 0.0).count();
    if total < positive {
        return Err(ShardError::TooFewItems {
            total,
            parts: positive,
        });
    }
    // Reserve the one-item floor, then Hamilton-apportion the rest: each
    // positive part takes the floor of its quota, and the leftover items
    // go to the largest fractional remainders (index-ordered on ties).
    let spare = total - positive;
    let mut counts = vec![0usize; weights.len()];
    let mut remainders: Vec<(f64, usize)> = Vec::with_capacity(positive);
    let mut assigned = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        if w <= 0.0 {
            continue;
        }
        let quota = spare as f64 * (w / sum);
        let base = quota.floor() as usize;
        counts[i] = 1 + base;
        assigned += base;
        remainders.push((quota - base as f64, i));
    }
    remainders.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    // Mathematically leftover < positive; cycling tolerates any float
    // drift in the quota sums without ever losing conservation.
    let mut leftover = spare - assigned;
    let mut next = 0usize;
    while leftover > 0 {
        counts[remainders[next % remainders.len()].1] += 1;
        next += 1;
        leftover -= 1;
    }
    debug_assert_eq!(counts.iter().sum::<usize>(), total);
    Ok(counts)
}

/// One shard's slice of the cluster: nodes `node_base .. node_base + num_nodes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Shard index.
    pub id: usize,
    /// First global node id owned by this shard.
    pub node_base: NodeId,
    /// Number of nodes owned (≥ 1).
    pub num_nodes: usize,
}

/// A partition of `0..total_nodes` into contiguous, disjoint shard ranges
/// covering every node exactly once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    shards: Vec<ShardSpec>,
    /// `owner[k]` = shard owning global node `k`.
    owner: Vec<usize>,
}

impl ShardMap {
    /// Partitions `total_nodes` nodes into `num_shards` near-equal shards.
    ///
    /// # Errors
    /// See [`apportion`]; notably [`ShardError::TooFewItems`] when there
    /// are more shards than nodes.
    pub fn even(total_nodes: usize, num_shards: usize) -> Result<ShardMap, ShardError> {
        ShardMap::weighted(total_nodes, &vec![1.0; num_shards])
    }

    /// Partitions `total_nodes` nodes proportionally to `weights`
    /// (largest-remainder, exact conservation).
    ///
    /// # Errors
    /// See [`apportion`].
    pub fn weighted(total_nodes: usize, weights: &[f64]) -> Result<ShardMap, ShardError> {
        let counts = apportion(total_nodes, weights)?;
        let mut shards = Vec::with_capacity(counts.len());
        let mut owner = Vec::with_capacity(total_nodes);
        let mut node_base = 0usize;
        for (id, &num_nodes) in counts.iter().enumerate() {
            shards.push(ShardSpec {
                id,
                node_base,
                num_nodes,
            });
            owner.extend(std::iter::repeat_n(id, num_nodes));
            node_base += num_nodes;
        }
        debug_assert_eq!(owner.len(), total_nodes);
        Ok(ShardMap { shards, owner })
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total nodes covered by the map.
    #[must_use]
    pub fn total_nodes(&self) -> usize {
        self.owner.len()
    }

    /// All shard ranges, in shard-id order.
    #[must_use]
    pub fn shards(&self) -> &[ShardSpec] {
        &self.shards
    }

    /// The shard range with index `shard`.
    #[must_use]
    pub fn spec(&self, shard: usize) -> ShardSpec {
        self.shards[shard]
    }

    /// Shard owning global node `node`.
    #[must_use]
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.owner[node]
    }

    /// Maps a global node id to `(shard, shard-local node id)`.
    #[must_use]
    pub fn to_local(&self, node: NodeId) -> (usize, NodeId) {
        let shard = self.owner[node];
        (shard, node - self.shards[shard].node_base)
    }

    /// Maps a shard-local node id back to the global id.
    #[must_use]
    pub fn to_global(&self, shard: usize, local: NodeId) -> NodeId {
        debug_assert!(local < self.shards[shard].num_nodes);
        self.shards[shard].node_base + local
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apportion_conserves_and_floors() {
        // The motivating bug: 2 parts × 0.5 over 5 nodes must give 5, not
        // the 3 + 3 = 6 that independent rounding produces.
        assert_eq!(apportion(5, &[0.5, 0.5]).unwrap(), vec![3, 2]);
        assert_eq!(apportion(9, &[1.0, 1.0, 1.0]).unwrap(), vec![3, 3, 3]);
        assert_eq!(apportion(9, &[3.0, 1.0]).unwrap(), vec![6, 3]);
        // Tiny share still gets its floor of one.
        assert_eq!(apportion(4, &[1000.0, 1e-9]).unwrap(), vec![3, 1]);
        // Zero-weight parts get exactly zero.
        assert_eq!(apportion(4, &[1.0, 0.0, 1.0]).unwrap(), vec![2, 0, 2]);
    }

    #[test]
    fn apportion_rejects_bad_weights() {
        assert_eq!(apportion(3, &[]), Err(ShardError::NoParts));
        assert_eq!(apportion(3, &[0.0, 0.0]), Err(ShardError::ZeroWeightSum));
        assert!(matches!(
            apportion(3, &[1.0, -0.5]),
            Err(ShardError::InvalidWeight { index: 1, .. })
        ));
        assert!(matches!(
            apportion(3, &[1.0, f64::NAN]),
            Err(ShardError::InvalidWeight { index: 1, .. })
        ));
        assert_eq!(
            apportion(2, &[1.0, 1.0, 1.0]),
            Err(ShardError::TooFewItems { total: 2, parts: 3 })
        );
    }

    #[test]
    fn apportion_is_exact_over_random_splits() {
        // Deterministic pseudo-random sweep (splitmix64), no RNG dep.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for _ in 0..200 {
            let parts = 1 + (next() % 6) as usize;
            let weights: Vec<f64> = (0..parts).map(|_| 0.01 + (next() % 1000) as f64).collect();
            let total = parts + (next() % 40) as usize;
            let counts = apportion(total, &weights).unwrap();
            assert_eq!(counts.iter().sum::<usize>(), total);
            assert!(counts.iter().all(|&c| c >= 1));
        }
    }

    #[test]
    fn shard_map_round_trips_node_ids() {
        let map = ShardMap::even(10, 3).unwrap();
        assert_eq!(map.num_shards(), 3);
        assert_eq!(map.total_nodes(), 10);
        let sizes: Vec<usize> = map.shards().iter().map(|s| s.num_nodes).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        for node in 0..10 {
            let (shard, local) = map.to_local(node);
            assert_eq!(map.shard_of(node), shard);
            assert_eq!(map.to_global(shard, local), node);
            let spec = map.spec(shard);
            assert!(node >= spec.node_base && node < spec.node_base + spec.num_nodes);
        }
        assert!(ShardMap::even(2, 3).is_err());
        assert_eq!(ShardMap::even(4, 1).unwrap().num_shards(), 1);
    }
}
