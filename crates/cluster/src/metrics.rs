//! Cluster utilization and co-location metrics.

use crate::ledger::CapacityLedger;
use pdftsp_types::{Decision, Scenario};

/// Aggregate cluster statistics computed after a run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterMetrics {
    /// Mean compute utilization over all `(k, t)` cells, `[0, 1]`.
    pub mean_compute_utilization: f64,
    /// Peak compute utilization over cells.
    pub peak_compute_utilization: f64,
    /// Mean adapter-memory utilization over cells, `[0, 1]`.
    pub mean_memory_utilization: f64,
    /// Maximum number of tasks co-located on one `(k, t)` cell — the
    /// multi-LoRA sharing degree.
    pub peak_colocation: usize,
    /// Mean number of co-located tasks over busy cells.
    pub mean_colocation_busy: f64,
    /// Number of admitted tasks.
    pub admitted: usize,
    /// Number of rejected tasks.
    pub rejected: usize,
}

impl ClusterMetrics {
    /// Computes metrics from the final ledger plus the decision list.
    #[must_use]
    pub fn compute(scenario: &Scenario, ledger: &CapacityLedger, decisions: &[Decision]) -> Self {
        let nodes = ledger.nodes();
        let horizon = ledger.horizon();
        let mut peak_u = 0.0f64;
        let mut sum_u = 0.0f64;
        let mut sum_m = 0.0f64;
        for k in 0..nodes {
            let cap = ledger.compute_capacity(k) as f64;
            let mcap = ledger.adapter_capacity(k);
            for t in 0..horizon {
                let u = if cap > 0.0 {
                    ledger.compute_used(k, t) as f64 / cap
                } else {
                    0.0
                };
                peak_u = peak_u.max(u);
                sum_u += u;
                sum_m += if mcap > 0.0 {
                    ledger.memory_used(k, t) / mcap
                } else {
                    0.0
                };
            }
        }
        let cells = (nodes * horizon).max(1) as f64;

        // Co-location from the committed schedules. Placements outside the
        // `nodes × horizon` grid are skipped rather than indexed: a
        // degenerate scenario (zero nodes or zero horizon) yields an empty
        // `colocated` vector, and a foreign decision list must not panic
        // the metrics pass that summarizes it.
        let mut colocated = vec![0usize; nodes * horizon];
        for d in decisions {
            if let Some(s) = d.schedule() {
                for &(k, t) in &s.placements {
                    if k < nodes && t < horizon {
                        colocated[k * horizon + t] += 1;
                    }
                }
            }
        }
        let peak_colocation = colocated.iter().copied().max().unwrap_or(0);
        let busy: Vec<usize> = colocated.iter().copied().filter(|&c| c > 0).collect();
        let mean_colocation_busy = if busy.is_empty() {
            0.0
        } else {
            busy.iter().sum::<usize>() as f64 / busy.len() as f64
        };

        let admitted = decisions.iter().filter(|d| d.is_admitted()).count();
        ClusterMetrics {
            mean_compute_utilization: sum_u / cells,
            peak_compute_utilization: peak_u,
            mean_memory_utilization: sum_m / cells,
            peak_colocation,
            mean_colocation_busy,
            admitted,
            rejected: decisions.len() - admitted,
        }
        .validate(scenario)
    }

    fn validate(self, _scenario: &Scenario) -> Self {
        debug_assert!(self.mean_compute_utilization <= 1.0 + 1e-9);
        debug_assert!(self.peak_compute_utilization <= 1.0 + 1e-9);
        self
    }

    /// The utilization block of a telemetry [`RunReport`]
    /// (`admitted`/`rejected` live in the report's decision tallies, so
    /// only the cluster-shape figures are carried over).
    ///
    /// [`RunReport`]: pdftsp_telemetry::RunReport
    #[must_use]
    pub fn utilization_summary(&self) -> pdftsp_telemetry::UtilizationSummary {
        pdftsp_telemetry::UtilizationSummary {
            mean_compute: self.mean_compute_utilization,
            peak_compute: self.peak_compute_utilization,
            mean_memory: self.mean_memory_utilization,
            peak_colocation: self.peak_colocation,
            mean_colocation_busy: self.mean_colocation_busy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdftsp_types::{
        CostGrid, Decision, GpuModel, NodeSpec, Schedule, TaskBuilder, VendorQuote,
    };

    fn scenario() -> Scenario {
        Scenario {
            horizon: 4,
            base_model_gb: 2.0,
            nodes: vec![NodeSpec::new(0, GpuModel::A100_80, 200)],
            tasks: vec![
                TaskBuilder::new(0, 0, 3)
                    .dataset(100)
                    .memory_gb(39.0)
                    .rates(vec![100])
                    .build()
                    .unwrap(),
                TaskBuilder::new(1, 0, 3)
                    .dataset(100)
                    .memory_gb(39.0)
                    .rates(vec![100])
                    .build()
                    .unwrap(),
            ],
            quotes: vec![vec![], vec![]],
            cost: CostGrid::flat(1, 4, 0.0),
        }
    }

    #[test]
    fn metrics_capture_colocation_and_utilization() {
        let sc = scenario();
        let mut ledger = CapacityLedger::new(&sc);
        let s0 = Schedule::new(0, VendorQuote::none(), vec![(0, 0)]);
        let s1 = Schedule::new(1, VendorQuote::none(), vec![(0, 0)]);
        ledger.commit(&sc.tasks[0], &s0).unwrap();
        ledger.commit(&sc.tasks[1], &s1).unwrap();
        let decisions = vec![
            Decision::admitted(0, s0, 1.0, 0.0),
            Decision::admitted(1, s1, 1.0, 0.0),
        ];
        let m = ClusterMetrics::compute(&sc, &ledger, &decisions);
        assert_eq!(m.peak_colocation, 2);
        assert_eq!(m.admitted, 2);
        assert_eq!(m.rejected, 0);
        // One of 4 slots fully used → mean 0.25, peak 1.0.
        assert!((m.mean_compute_utilization - 0.25).abs() < 1e-9);
        assert!((m.peak_compute_utilization - 1.0).abs() < 1e-9);
        // Memory: 78 GB used of 78 on one slot of four.
        assert!((m.mean_memory_utilization - 0.25).abs() < 1e-9);
        assert!((m.mean_colocation_busy - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_run_has_zero_metrics() {
        let sc = scenario();
        let ledger = CapacityLedger::new(&sc);
        let m = ClusterMetrics::compute(&sc, &ledger, &[]);
        assert_eq!(m.peak_colocation, 0);
        assert_eq!(m.mean_compute_utilization, 0.0);
        assert_eq!(m.mean_colocation_busy, 0.0);
    }

    #[test]
    fn zero_horizon_scenario_does_not_panic_on_placements() {
        // A degenerate scenario with an empty grid: the decision list may
        // still carry placements (e.g. replayed from another run); metrics
        // must skip them rather than index an empty co-location vector.
        let mut sc = scenario();
        sc.horizon = 0;
        sc.cost = CostGrid::flat(1, 0, 0.0);
        sc.tasks.clear();
        sc.quotes.clear();
        let ledger = CapacityLedger::new(&sc);
        let s = Schedule::new(0, VendorQuote::none(), vec![(0, 0)]);
        let decisions = vec![Decision::admitted(0, s, 1.0, 0.0)];
        let m = ClusterMetrics::compute(&sc, &ledger, &decisions);
        assert_eq!(m.peak_colocation, 0);
        assert_eq!(m.mean_compute_utilization, 0.0);
        assert_eq!(m.mean_memory_utilization, 0.0);
        assert_eq!(m.admitted, 1);
    }

    #[test]
    fn zero_node_scenario_does_not_panic_on_placements() {
        let mut sc = scenario();
        sc.nodes.clear();
        sc.cost = CostGrid::flat(0, 4, 0.0);
        sc.tasks.clear();
        sc.quotes.clear();
        let ledger = CapacityLedger::new(&sc);
        let s = Schedule::new(0, VendorQuote::none(), vec![(0, 1)]);
        let decisions = vec![Decision::admitted(0, s, 1.0, 0.0)];
        let m = ClusterMetrics::compute(&sc, &ledger, &decisions);
        assert_eq!(m.peak_colocation, 0);
        assert_eq!(m.mean_colocation_busy, 0.0);
        assert_eq!(m.rejected, 0);
    }

    #[test]
    fn out_of_grid_placements_are_skipped_not_counted() {
        let sc = scenario();
        let ledger = CapacityLedger::new(&sc);
        // Node 3 and slot 9 are outside the 1×4 grid; (0, 0) is inside.
        let s = Schedule::new(0, VendorQuote::none(), vec![(0, 0), (3, 1), (0, 9)]);
        let decisions = vec![Decision::admitted(0, s, 1.0, 0.0)];
        let m = ClusterMetrics::compute(&sc, &ledger, &decisions);
        assert_eq!(m.peak_colocation, 1);
        assert!((m.mean_colocation_busy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_summary_mirrors_the_metric_fields() {
        let sc = scenario();
        let mut ledger = CapacityLedger::new(&sc);
        let s0 = Schedule::new(0, VendorQuote::none(), vec![(0, 0)]);
        ledger.commit(&sc.tasks[0], &s0).unwrap();
        let decisions = vec![Decision::admitted(0, s0, 1.0, 0.0)];
        let m = ClusterMetrics::compute(&sc, &ledger, &decisions);
        let u = m.utilization_summary();
        assert_eq!(u.mean_compute, m.mean_compute_utilization);
        assert_eq!(u.peak_compute, m.peak_compute_utilization);
        assert_eq!(u.mean_memory, m.mean_memory_utilization);
        assert_eq!(u.peak_colocation, m.peak_colocation);
        assert_eq!(u.mean_colocation_busy, m.mean_colocation_busy);
    }
}
