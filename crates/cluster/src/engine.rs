//! Execution engine: replays committed schedules over the slotted horizon.
//!
//! Given a scenario and the set of admitted decisions, the engine simulates
//! the cluster slot by slot, producing:
//!
//! * a task-lifecycle event log (admitted tasks start, may suspend and
//!   resume — the paper's "suspend and resume execution alternately" — and
//!   complete);
//! * verified accounting: every placement respects capacity (via a fresh
//!   [`CapacityLedger`]), every admitted task completes its `M_i` work by
//!   its deadline;
//! * the realized operational cost per slot (the `Σ e_ikt x_ikt` term of
//!   the objective).
//!
//! The engine is the ground truth the simulation reports welfare from; a
//! scheduler cannot overstate its result by mis-reporting, because the
//! engine recomputes everything from the committed schedules.

use crate::ledger::{CapacityLedger, LedgerError};
use pdftsp_types::{Decision, Scenario, Slot, TaskId};

/// What happened to a task at a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskEventKind {
    /// First execution slot.
    Started,
    /// Executed this slot after a gap (resume).
    Resumed,
    /// Stopped executing with work remaining (suspend, effective after the
    /// given slot).
    Suspended,
    /// Finished its cumulative work `M_i` at this slot.
    Completed,
}

/// One lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskEvent {
    /// Task concerned.
    pub task: TaskId,
    /// Slot at which the event takes effect.
    pub slot: Slot,
    /// Event kind.
    pub kind: TaskEventKind,
}

/// Replay outcome.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// Lifecycle events ordered by slot then task id.
    pub events: Vec<TaskEvent>,
    /// Tasks that completed (all admitted tasks must, by construction).
    pub completed: Vec<TaskId>,
    /// Realized operational cost per slot (`Σ_i Σ_k e_ikt x_ikt`).
    pub energy_per_slot: Vec<f64>,
    /// Total realized operational cost.
    pub total_energy: f64,
    /// Final ledger (for utilization metrics).
    pub ledger: CapacityLedger,
}

/// Errors detected during replay — any of these means the scheduler under
/// test produced an invalid outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// A committed schedule violated capacity.
    Capacity(LedgerError),
    /// An admitted task did not reach `M_i` by its deadline, or violated a
    /// schedule constraint.
    InvalidSchedule { task: TaskId, reason: String },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Capacity(e) => write!(f, "capacity violation: {e}"),
            ReplayError::InvalidSchedule { task, reason } => {
                write!(f, "task {task}: invalid schedule: {reason}")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// One task's lifecycle summary distilled from the event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskLifetime {
    /// Task id.
    pub task: TaskId,
    /// First execution slot.
    pub started: Slot,
    /// Completion slot (inclusive).
    pub completed: Slot,
    /// Number of suspend/resume cycles (the paper's "suspend and resume
    /// execution alternately").
    pub suspensions: usize,
}

impl ExecutionReport {
    /// Distills per-task lifecycle summaries from the event log.
    #[must_use]
    pub fn lifetimes(&self) -> Vec<TaskLifetime> {
        use std::collections::BTreeMap;
        let mut acc: BTreeMap<TaskId, (Option<Slot>, Option<Slot>, usize)> = BTreeMap::new();
        for e in &self.events {
            let entry = acc.entry(e.task).or_insert((None, None, 0));
            match e.kind {
                TaskEventKind::Started => entry.0 = Some(e.slot),
                TaskEventKind::Completed => entry.1 = Some(e.slot),
                TaskEventKind::Suspended => entry.2 += 1,
                TaskEventKind::Resumed => {}
            }
        }
        acc.into_iter()
            .filter_map(|(task, (s, c, susp))| {
                Some(TaskLifetime {
                    task,
                    started: s?,
                    completed: c?,
                    suspensions: susp,
                })
            })
            .collect()
    }

    /// Mean turnaround (completion − start + 1) in slots over completed
    /// tasks; 0 when nothing completed.
    #[must_use]
    pub fn mean_turnaround_slots(&self) -> f64 {
        let lt = self.lifetimes();
        if lt.is_empty() {
            return 0.0;
        }
        lt.iter()
            .map(|l| (l.completed - l.started + 1) as f64)
            .sum::<f64>()
            / lt.len() as f64
    }
}

/// The execution engine.
#[derive(Debug)]
pub struct ExecutionEngine;

impl ExecutionEngine {
    /// Replays `decisions` against `scenario`.
    ///
    /// # Errors
    /// Returns the first capacity or schedule violation found.
    pub fn replay(
        scenario: &Scenario,
        decisions: &[Decision],
    ) -> Result<ExecutionReport, ReplayError> {
        let mut ledger = CapacityLedger::new(scenario);
        let mut events = Vec::new();
        let mut completed = Vec::new();
        let mut energy_per_slot = vec![0.0; scenario.horizon];

        for d in decisions {
            let Some(schedule) = d.schedule() else {
                continue;
            };
            let task = &scenario.tasks[d.task];
            schedule
                .validate(task)
                .map_err(|v| ReplayError::InvalidSchedule {
                    task: d.task,
                    reason: format!("{v:?}"),
                })?;
            ledger
                .commit(task, schedule)
                .map_err(ReplayError::Capacity)?;

            // Lifecycle events from the (slot-sorted) placements.
            let mut prev_slot: Option<Slot> = None;
            let mut done: u64 = 0;
            for (j, &(k, t)) in schedule.placements.iter().enumerate() {
                match prev_slot {
                    None => events.push(TaskEvent {
                        task: d.task,
                        slot: t,
                        kind: TaskEventKind::Started,
                    }),
                    Some(p) if t > p + 1 => {
                        events.push(TaskEvent {
                            task: d.task,
                            slot: p,
                            kind: TaskEventKind::Suspended,
                        });
                        events.push(TaskEvent {
                            task: d.task,
                            slot: t,
                            kind: TaskEventKind::Resumed,
                        });
                    }
                    _ => {}
                }
                prev_slot = Some(t);
                done += task.rate(k);
                energy_per_slot[t] += scenario.cost.e(task, k, t);
                if done >= task.work && j == schedule.placements.len() - 1 {
                    events.push(TaskEvent {
                        task: d.task,
                        slot: t,
                        kind: TaskEventKind::Completed,
                    });
                    completed.push(d.task);
                }
            }
            if done < task.work {
                return Err(ReplayError::InvalidSchedule {
                    task: d.task,
                    reason: format!("work {done} < required {}", task.work),
                });
            }
        }

        events.sort_by_key(|e| (e.slot, e.task));
        let total_energy = energy_per_slot.iter().sum();
        Ok(ExecutionReport {
            events,
            completed,
            energy_per_slot,
            total_energy,
            ledger,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdftsp_types::{
        CostGrid, Decision, GpuModel, NodeSpec, Schedule, TaskBuilder, VendorQuote,
    };

    fn scenario() -> Scenario {
        let tasks = vec![
            TaskBuilder::new(0, 0, 7)
                .dataset(300)
                .memory_gb(4.0)
                .bid(10.0)
                .rates(vec![100])
                .build()
                .unwrap(),
            TaskBuilder::new(1, 1, 7)
                .dataset(200)
                .memory_gb(4.0)
                .bid(8.0)
                .rates(vec![100])
                .build()
                .unwrap(),
        ];
        Scenario {
            horizon: 8,
            base_model_gb: 2.0,
            nodes: vec![NodeSpec::new(0, GpuModel::A100_80, 250)],
            quotes: vec![vec![], vec![]],
            cost: CostGrid::flat(1, 8, 0.5),
            tasks,
        }
    }

    #[test]
    fn contiguous_schedule_starts_and_completes() {
        let sc = scenario();
        let s = Schedule::new(0, VendorQuote::none(), vec![(0, 0), (0, 1), (0, 2)]);
        let d = vec![Decision::admitted(0, s, 5.0, 0.0)];
        let r = ExecutionEngine::replay(&sc, &d).unwrap();
        assert_eq!(r.completed, vec![0]);
        assert_eq!(
            r.events,
            vec![
                TaskEvent {
                    task: 0,
                    slot: 0,
                    kind: TaskEventKind::Started
                },
                TaskEvent {
                    task: 0,
                    slot: 2,
                    kind: TaskEventKind::Completed
                },
            ]
        );
        assert!((r.total_energy - 1.5).abs() < 1e-12);
    }

    #[test]
    fn gap_produces_suspend_resume() {
        let sc = scenario();
        let s = Schedule::new(0, VendorQuote::none(), vec![(0, 0), (0, 1), (0, 4)]);
        let d = vec![Decision::admitted(0, s, 5.0, 0.0)];
        let r = ExecutionEngine::replay(&sc, &d).unwrap();
        let kinds: Vec<_> = r.events.iter().map(|e| (e.slot, e.kind)).collect();
        assert_eq!(
            kinds,
            vec![
                (0, TaskEventKind::Started),
                (1, TaskEventKind::Suspended),
                (4, TaskEventKind::Resumed),
                (4, TaskEventKind::Completed),
            ]
        );
    }

    #[test]
    fn capacity_violation_is_detected() {
        let sc = scenario();
        // Node capacity 250; three 100-rate tasks on the same slot is fine,
        // but we only have two tasks — craft overlap instead: both tasks
        // plus a duplicate decision for task 0 on slot 2 → 300 > 250.
        let s0 = Schedule::new(0, VendorQuote::none(), vec![(0, 0), (0, 1), (0, 2)]);
        let s1 = Schedule::new(1, VendorQuote::none(), vec![(0, 1), (0, 2)]);
        let s0b = Schedule::new(0, VendorQuote::none(), vec![(0, 2), (0, 3), (0, 4)]);
        let d = vec![
            Decision::admitted(0, s0, 5.0, 0.0),
            Decision::admitted(1, s1, 4.0, 0.0),
            Decision::admitted(0, s0b, 5.0, 0.0),
        ];
        let err = ExecutionEngine::replay(&sc, &d).unwrap_err();
        assert!(matches!(err, ReplayError::Capacity(_)), "{err:?}");
    }

    #[test]
    fn insufficient_work_is_detected() {
        let sc = scenario();
        // Task 0 needs 300 samples; 2 slots × 100 = 200.
        let s = Schedule::new(0, VendorQuote::none(), vec![(0, 0), (0, 1)]);
        let d = vec![Decision::admitted(0, s, 5.0, 0.0)];
        let err = ExecutionEngine::replay(&sc, &d).unwrap_err();
        assert!(matches!(err, ReplayError::InvalidSchedule { task: 0, .. }));
    }

    #[test]
    fn rejected_decisions_cost_nothing() {
        let sc = scenario();
        let d = vec![Decision::rejected(
            0,
            pdftsp_types::Rejection::NonPositiveSurplus,
            0.0,
        )];
        let r = ExecutionEngine::replay(&sc, &d).unwrap();
        assert!(r.completed.is_empty());
        assert_eq!(r.total_energy, 0.0);
    }

    #[test]
    fn lifetimes_summarize_the_event_log() {
        let sc = scenario();
        let s = Schedule::new(0, VendorQuote::none(), vec![(0, 1), (0, 2), (0, 5)]);
        let d = vec![Decision::admitted(0, s, 5.0, 0.0)];
        let r = ExecutionEngine::replay(&sc, &d).unwrap();
        let lt = r.lifetimes();
        assert_eq!(lt.len(), 1);
        assert_eq!(lt[0].task, 0);
        assert_eq!(lt[0].started, 1);
        assert_eq!(lt[0].completed, 5);
        assert_eq!(lt[0].suspensions, 1);
        assert!((r.mean_turnaround_slots() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_has_zero_turnaround() {
        let sc = scenario();
        let r = ExecutionEngine::replay(&sc, &[]).unwrap();
        assert!(r.lifetimes().is_empty());
        assert_eq!(r.mean_turnaround_slots(), 0.0);
    }

    #[test]
    fn two_tasks_share_a_slot_within_capacity() {
        let sc = scenario();
        let s0 = Schedule::new(0, VendorQuote::none(), vec![(0, 1), (0, 2), (0, 3)]);
        let s1 = Schedule::new(1, VendorQuote::none(), vec![(0, 1), (0, 2)]);
        let d = vec![
            Decision::admitted(0, s0, 5.0, 0.0),
            Decision::admitted(1, s1, 4.0, 0.0),
        ];
        let r = ExecutionEngine::replay(&sc, &d).unwrap();
        assert_eq!(r.completed.len(), 2);
        // Slot 1 runs both tasks: energy 2 × 0.5.
        assert!((r.energy_per_slot[1] - 1.0).abs() < 1e-12);
        assert_eq!(r.ledger.compute_used(0, 1), 200);
    }
}
