//! # pdftsp-cluster
//!
//! The slotted-time GPU-cluster simulator the schedulers run against.
//!
//! * [`ledger`] — per-`(k, t)` capacity accounting for the computation
//!   constraint (4f) `Σ_i s_ik x_ikt ≤ C_kp` and the multi-LoRA memory
//!   constraint (4g) `Σ_i r_i x_ikt + r_b ≤ C_km`. Every scheduler owns a
//!   ledger and commits winning schedules to it irrevocably.
//! * [`energy`] — time-varying operational-cost signals (flat, diurnal,
//!   spiky) producing the `e_ikt` surface of the objective.
//! * [`engine`] — an execution engine that replays all committed schedules
//!   slot by slot, tracking task lifecycles (start / suspend / resume /
//!   complete), verifying deadlines and capacities, and accounting energy.
//! * [`metrics`] — utilization and co-location statistics.
//! * [`parallel`] — a persistent, deterministic worker pool behind an
//!   order-preserving parallel map, shared by the scheduler hot path
//!   (vendor evaluation), the experiment sweeps, and the auction
//!   service's phase-1 proposals.
//! * [`shard`] — largest-remainder node apportionment and the contiguous
//!   shard ranges the sharded auction service partitions the cluster
//!   into (each shard owns its own ledger slice and dual grid).

pub mod energy;
pub mod engine;
pub mod lease;
pub mod ledger;
pub mod metrics;
pub mod parallel;
pub mod shard;

pub use energy::{EnergySignal, PriceModel, SLOTS_PER_DAY};
pub use engine::ReplayError;
pub use engine::{ExecutionEngine, ExecutionReport, TaskEvent, TaskEventKind, TaskLifetime};
pub use lease::{LeasePlan, NodeLease};
pub use ledger::{CapacityLedger, LedgerError, Released};
pub use metrics::ClusterMetrics;
pub use parallel::{
    configured_threads, effective_workers, hardware_threads, parallel_map, pool_stats,
    set_thread_override, spawn, thread_override, try_parallel_map, JobHandle, PoolPanic, PoolStats,
};
pub use shard::{apportion, ShardError, ShardMap, ShardSpec};
