//! Scoped parallel map for independent work items.
//!
//! Each work item (a vendor candidate in the scheduler hot path, or a
//! "build scenario, run scheduler" job in experiment sweeps) is
//! independent: no shared mutable state, so data-race freedom by
//! construction. Work is pulled from an atomic counter so uneven item
//! costs (Titan's MILPs vs. EFT's greedy) balance automatically.
//!
//! Each worker accumulates `(index, result)` pairs in a private vector;
//! results are merged by index after the workers join. No lock or atomic
//! write per item on the hot path (the mutex-per-item slots of the first
//! version cost a lock round-trip per result), and the per-item type only
//! needs `Send`, not `Sync`.

use std::sync::atomic::{AtomicUsize, Ordering};

/// How many workers [`parallel_map`] will actually spawn for a batch of
/// `items` work items: `min(items, available_parallelism)`. Exposed so
/// benchmark emitters can report the real thread count used by the gated
/// parallel paths instead of guessing.
#[must_use]
pub fn effective_workers(items: usize) -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(items)
}

/// Applies `f` to every item, in parallel, preserving order of results.
///
/// Spawns at most `min(items, available_parallelism)` workers. Falls back
/// to a sequential loop for 0/1 items or a single-core host.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = effective_workers(items.len());
    if items.len() <= 1 || workers <= 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
        for handle in handles {
            for (i, r) in handle.join().expect("worker panicked") {
                debug_assert!(out[i].is_none(), "index handed out twice");
                out[i] = Some(r);
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("every index was processed"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..57).collect();
        let out = parallel_map(&items, |_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(out.len(), 57);
        assert_eq!(counter.load(Ordering::SeqCst), 57);
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn matches_sequential_for_stateless_work() {
        let items: Vec<u64> = (0..40).collect();
        let par = parallel_map(&items, |&x| x * x % 17);
        let seq: Vec<u64> = items.iter().map(|&x| x * x % 17).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn effective_workers_is_capped_by_items_and_hardware() {
        assert_eq!(effective_workers(0), 0);
        assert_eq!(effective_workers(1), 1);
        let hw = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        assert_eq!(effective_workers(usize::MAX), hw);
        assert!(effective_workers(3) <= 3);
    }

    #[test]
    fn uneven_item_costs_still_complete_in_order() {
        let items: Vec<u64> = (0..32).collect();
        let out = parallel_map(&items, |&x| {
            if x % 7 == 0 {
                // Simulate a heavy item.
                let mut acc = 0u64;
                for i in 0..20_000 {
                    acc = acc.wrapping_add(i * x);
                }
                std::hint::black_box(acc);
            }
            x + 1
        });
        assert_eq!(out, (1..=32).collect::<Vec<_>>());
    }
}
