//! Persistent deterministic worker pool for independent work items.
//!
//! Each work item (a vendor candidate in the scheduler hot path, a
//! "build scenario, run scheduler" job in experiment sweeps, or a shard
//! proposal in the auction service) is independent: no shared mutable
//! state, so data-race freedom by construction. Work is pulled from an
//! atomic claim counter so uneven item costs (Titan's MILPs vs. EFT's
//! greedy) balance automatically.
//!
//! Unlike the first scoped-spawn version, workers are **long-lived**:
//! the first parallel batch spins up a process-global pool and every
//! later batch is dispatched to the already-parked threads through a
//! queue, removing the per-batch thread spawn/join cost from the epoch
//! hot path. Three properties carry over from the scoped design and are
//! load-bearing for the repo's determinism contracts:
//!
//! * **Order preservation** — results land in per-index slots, so the
//!   output is a pure function of the input regardless of worker count
//!   or interleaving.
//! * **Caller-runs submission** — the submitting thread always works on
//!   its own batch alongside the pool. Nested submission (a
//!   `ratio_sweep` item that itself runs a vendor sweep) therefore
//!   cannot deadlock even when every pool thread is busy: the submitter
//!   drains its own batch unaided in the worst case.
//! * **Panic containment** — a panicking work item is caught at the
//!   item boundary and surfaced as a [`PoolPanic`] from
//!   [`try_parallel_map`] (lowest panicking index wins, so the report
//!   is deterministic). The pool threads never unwind, never poison,
//!   and keep serving later batches.
//!
//! Worker-count semantics are unchanged: `PDFTSP_THREADS`, the
//! programmatic [`set_thread_override`], and
//! [`effective_workers`]`(items) = min(items, configured_threads())`.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Sentinel for "no programmatic override installed".
const UNSET: usize = usize::MAX;

/// Programmatic thread override ([`set_thread_override`]); beats the
/// `PDFTSP_THREADS` environment variable when both are present.
static EXPLICIT: AtomicUsize = AtomicUsize::new(UNSET);

/// `PDFTSP_THREADS` parsed once per process (clamped to ≥ 1).
fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("PDFTSP_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|n| n.max(1))
    })
}

/// The host's hardware parallelism (what `available_parallelism` reports;
/// 4 when the platform cannot say).
#[must_use]
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

/// Installs (or with `None` removes) a process-wide worker-thread
/// override, taking precedence over `PDFTSP_THREADS`. Benchmarks use this
/// to sweep vendor-scaling points; schedulers cache the value at
/// construction, so set it before constructing them.
pub fn set_thread_override(threads: Option<usize>) {
    EXPLICIT.store(threads.map_or(UNSET, |n| n.max(1)), Ordering::Relaxed);
}

/// The active override, if any: programmatic first, then `PDFTSP_THREADS`.
#[must_use]
pub fn thread_override() -> Option<usize> {
    match EXPLICIT.load(Ordering::Relaxed) {
        UNSET => env_threads(),
        n => Some(n),
    }
}

/// Worker threads parallel paths should use: the override when installed,
/// otherwise the hardware's parallelism.
#[must_use]
pub fn configured_threads() -> usize {
    thread_override().unwrap_or_else(hardware_threads)
}

/// How many workers [`parallel_map`] will actually use for a batch of
/// `items` work items: `min(items, configured_threads)`. Exposed so
/// benchmark emitters can report the real thread count used by the
/// parallel paths instead of guessing.
#[must_use]
pub fn effective_workers(items: usize) -> usize {
    configured_threads().min(items)
}

/// A work item panicked inside a parallel batch. The pool catches the
/// unwind at the item boundary, so the process (and the pool threads)
/// survive; the lowest panicking index is reported for determinism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolPanic {
    /// Index of the lowest-numbered item whose closure panicked.
    pub index: usize,
    /// The panic payload, when it was a string (the common case).
    pub message: String,
}

impl std::fmt::Display for PoolPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "work item {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for PoolPanic {}

/// Snapshot of the process-global pool's lifetime counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Long-lived pool threads currently alive (grows on demand, never
    /// shrinks; the submitting thread is not counted).
    pub workers: usize,
    /// Work items executed across all batches and spawned jobs since
    /// process start.
    pub tasks: u64,
    /// Batches dispatched since process start.
    pub batches: u64,
    /// Single jobs dispatched via [`spawn`] since process start.
    pub jobs: u64,
    /// Cumulative nanoseconds pool threads spent parked waiting for
    /// work (idle time, not contention).
    pub park_ns: u64,
}

/// Lock acquisition that shrugs off poisoning: work items never unwind
/// through pool internals (panics are caught at the item boundary), and
/// the guarded state stays consistent even if a test thread died while
/// holding an unrelated guard.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One submitted batch: a lifetime-erased runner plus claim/completion
/// counters. Queued as `Arc<Batch>` tokens — one token per helper the
/// submitter wants — so several pool threads can join the same batch.
///
/// # Safety protocol for `run`
///
/// `run` points at a stack closure owned by the submitting thread. The
/// pointer is only dereferenced for claimed indices `i < len`, and the
/// submitter blocks in [`Batch::wait_done`] until `done == len`, which
/// can only happen after every claimed item finished executing. A
/// worker holding a stale token (queued token outliving the batch)
/// observes `next >= len` and returns without touching `run`. Hence
/// `run` is never dereferenced after the submitter resumes, and the
/// closure (with everything it borrows) outlives every dereference.
/// The runner must not unwind — callers wrap the work in
/// `catch_unwind` at the item boundary.
struct Batch {
    run: *const (dyn Fn(usize) + Sync),
    len: usize,
    /// Next unclaimed item index.
    next: AtomicUsize,
    /// Completed item count; `done == len` releases the submitter.
    done: AtomicUsize,
    finished: Mutex<bool>,
    fin_cv: Condvar,
}

// SAFETY: `run` is `Sync` (shared-call safe) and the protocol above
// guarantees it is live for every dereference; all other fields are
// plain sync primitives.
unsafe impl Send for Batch {}
unsafe impl Sync for Batch {}

impl Batch {
    /// Claim and execute items until the batch is exhausted. The thread
    /// that completes the final item flips `finished` and wakes the
    /// submitter.
    fn work(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.len {
                return;
            }
            // SAFETY: `i < len`, so per the protocol documented on
            // `Batch` the closure is still live; it does not unwind.
            unsafe { (*self.run)(i) };
            if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.len {
                *lock(&self.finished) = true;
                self.fin_cv.notify_all();
            }
        }
    }

    /// Blocks until every item has finished executing.
    fn wait_done(&self) {
        let mut fin = lock(&self.finished);
        while !*fin {
            fin = self
                .fin_cv
                .wait(fin)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// One fire-and-forget job submitted via [`spawn`]: the closure is
/// claimed (taken) exactly once — by a pool worker or by the waiting
/// [`JobHandle`] (caller-runs) — and the outcome is published under
/// `done` for the handle to collect.
struct Job {
    f: Mutex<Option<Box<dyn FnOnce() + Send>>>,
    done: Mutex<Option<Result<(), PoolPanic>>>,
    done_cv: Condvar,
}

impl Job {
    /// Claims and runs the closure if nobody has yet; a panic is caught
    /// at the job boundary and published as the job's outcome.
    fn run(&self) {
        let Some(f) = lock(&self.f).take() else {
            return;
        };
        let outcome = catch_unwind(AssertUnwindSafe(f)).map_err(|payload| PoolPanic {
            index: 0,
            message: panic_message(payload.as_ref()),
        });
        *lock(&self.done) = Some(outcome);
        self.done_cv.notify_all();
    }
}

/// Handle to a job submitted with [`spawn`]. Dropping the handle
/// without waiting is safe: the job keeps running on the pool and its
/// captures are freed when it finishes (the closure is `'static`).
pub struct JobHandle {
    job: Arc<Job>,
}

impl JobHandle {
    /// Whether the job has finished executing (without blocking).
    #[must_use]
    pub fn is_done(&self) -> bool {
        lock(&self.job.done).is_some()
    }

    /// Blocks until the job has run, executing it inline if no pool
    /// worker claimed it yet (caller-runs, so a starved pool can never
    /// deadlock the waiter). A contained panic surfaces as the error.
    ///
    /// # Errors
    /// [`PoolPanic`] when the job's closure panicked.
    pub fn wait(self) -> Result<(), PoolPanic> {
        self.job.run();
        let mut done = lock(&self.job.done);
        loop {
            if let Some(outcome) = done.take() {
                return outcome;
            }
            done = self
                .job
                .done_cv
                .wait(done)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// A unit of queued pool work: a shared batch token or a single job.
enum Work {
    Batch(Arc<Batch>),
    Job(Arc<Job>),
}

/// The process-global pool: a queue of work tokens, a wake signal, and
/// lifetime counters. Threads are spawned lazily up to the demand of
/// the largest batch seen so far and then parked between batches.
struct Pool {
    queue: Mutex<VecDeque<Work>>,
    work_cv: Condvar,
    workers: AtomicUsize,
    tasks: AtomicU64,
    batches: AtomicU64,
    jobs: AtomicU64,
    park_ns: AtomicU64,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        work_cv: Condvar::new(),
        workers: AtomicUsize::new(0),
        tasks: AtomicU64::new(0),
        batches: AtomicU64::new(0),
        jobs: AtomicU64::new(0),
        park_ns: AtomicU64::new(0),
    })
}

/// Counter snapshot for telemetry ([`PoolStats`]).
#[must_use]
pub fn pool_stats() -> PoolStats {
    let p = pool();
    PoolStats {
        workers: p.workers.load(Ordering::Relaxed),
        tasks: p.tasks.load(Ordering::Relaxed),
        batches: p.batches.load(Ordering::Relaxed),
        jobs: p.jobs.load(Ordering::Relaxed),
        park_ns: p.park_ns.load(Ordering::Relaxed),
    }
}

fn worker_loop(pool: &'static Pool) {
    loop {
        let work = {
            let mut q = lock(&pool.queue);
            loop {
                if let Some(w) = q.pop_front() {
                    break w;
                }
                let parked = Instant::now();
                q = pool.work_cv.wait(q).unwrap_or_else(PoisonError::into_inner);
                let ns = u64::try_from(parked.elapsed().as_nanos()).unwrap_or(u64::MAX);
                pool.park_ns.fetch_add(ns, Ordering::Relaxed);
            }
        };
        match work {
            Work::Batch(batch) => batch.work(),
            // Stale tokens for finished batches fall out of `work()`
            // immediately (`next >= len`); a job already claimed by its
            // waiting handle falls out of `run()` the same way.
            Work::Job(job) => job.run(),
        }
    }
}

/// Submits one closure to the persistent pool and returns immediately.
/// The job runs on a pool thread (the pool is grown toward
/// [`configured_threads`] if needed); [`JobHandle::wait`] runs it
/// inline if no worker got to it first. A panicking job is contained at
/// the job boundary — the pool thread survives and the panic surfaces
/// from `wait`.
///
/// This is the building block the pipelined auction service uses to
/// overlap next-epoch shard proposals with the current epoch's commit;
/// batch-shaped work should keep using [`parallel_map`].
pub fn spawn(f: impl FnOnce() + Send + 'static) -> JobHandle {
    let pool = pool();
    pool.tasks.fetch_add(1, Ordering::Relaxed);
    pool.jobs.fetch_add(1, Ordering::Relaxed);
    let job = Arc::new(Job {
        f: Mutex::new(Some(Box::new(f))),
        done: Mutex::new(None),
        done_cv: Condvar::new(),
    });
    ensure_workers(pool, configured_threads());
    lock(&pool.queue).push_back(Work::Job(Arc::clone(&job)));
    pool.work_cv.notify_one();
    JobHandle { job }
}

/// Grows the pool to at least `want` long-lived threads. Spawn failure
/// degrades gracefully: the batch still completes via caller-runs.
fn ensure_workers(pool: &'static Pool, want: usize) {
    let mut cur = pool.workers.load(Ordering::Relaxed);
    while cur < want {
        match pool
            .workers
            .compare_exchange(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => {
                let spawned = std::thread::Builder::new()
                    .name(format!("pdftsp-pool-{cur}"))
                    .spawn(move || worker_loop(pool));
                if spawned.is_err() {
                    pool.workers.fetch_sub(1, Ordering::Relaxed);
                    return;
                }
                cur += 1;
            }
            Err(seen) => cur = seen,
        }
    }
}

/// Dispatches one batch to the pool and participates in draining it.
/// `helpers` is how many pool threads are invited on top of the caller.
fn run_batch(run: &(dyn Fn(usize) + Sync), len: usize, helpers: usize) {
    let pool = pool();
    pool.batches.fetch_add(1, Ordering::Relaxed);
    pool.tasks.fetch_add(len as u64, Ordering::Relaxed);
    // SAFETY: pure lifetime erasure on a fat pointer (the raw trait
    // object defaults to `+ 'static`); liveness is guaranteed by the
    // protocol documented on `Batch`.
    let run: *const (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute(run as *const (dyn Fn(usize) + Sync + '_)) };
    let batch = Arc::new(Batch {
        run,
        len,
        next: AtomicUsize::new(0),
        done: AtomicUsize::new(0),
        finished: Mutex::new(false),
        fin_cv: Condvar::new(),
    });
    if helpers > 0 {
        ensure_workers(pool, helpers);
        let mut q = lock(&pool.queue);
        for _ in 0..helpers {
            q.push_back(Work::Batch(Arc::clone(&batch)));
        }
        drop(q);
        pool.work_cv.notify_all();
    }
    batch.work();
    batch.wait_done();
}

/// Per-index result slots written concurrently at disjoint indices.
struct Slots<R>(Vec<UnsafeCell<Option<R>>>);

// SAFETY: the claim counter hands every index to exactly one worker, so
// all writes are to disjoint cells; reads happen only after the batch
// completes (`done == len` is an acquire/release edge via `wait_done`).
unsafe impl<R: Send> Sync for Slots<R> {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Applies `f` to every item in parallel on the persistent pool,
/// preserving order of results. A panicking item is contained and
/// reported as [`PoolPanic`] (lowest index wins); the remaining items
/// still run, the pool drains, and later batches are unaffected.
///
/// Uses at most [`effective_workers`]`(items)` threads (the caller
/// counts as one). Falls back to a sequential loop for 0/1 items or a
/// single configured thread — with the same error surface.
pub fn try_parallel_map<T, R, F>(items: &[T], f: F) -> Result<Vec<R>, PoolPanic>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = effective_workers(items.len());
    if items.len() <= 1 || workers <= 1 {
        let mut out = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            match catch_unwind(AssertUnwindSafe(|| f(item))) {
                Ok(r) => out.push(r),
                Err(payload) => {
                    return Err(PoolPanic {
                        index: i,
                        message: panic_message(payload.as_ref()),
                    })
                }
            }
        }
        return Ok(out);
    }

    let slots = Slots((0..items.len()).map(|_| UnsafeCell::new(None)).collect());
    let first_panic: Mutex<Option<PoolPanic>> = Mutex::new(None);
    // Capture the `Sync` wrapper, not the inner Vec — edition-2021
    // disjoint capture would otherwise grab the non-`Sync` field.
    let slots_ref = &slots;
    let run = |i: usize| match catch_unwind(AssertUnwindSafe(|| f(&items[i]))) {
        Ok(r) => {
            // SAFETY: index `i` was claimed by exactly one worker.
            unsafe { *slots_ref.0[i].get() = Some(r) };
        }
        Err(payload) => {
            let mut guard = lock(&first_panic);
            if guard.as_ref().is_none_or(|prev| i < prev.index) {
                *guard = Some(PoolPanic {
                    index: i,
                    message: panic_message(payload.as_ref()),
                });
            }
        }
    };
    run_batch(&run, items.len(), workers - 1);
    if let Some(p) = lock(&first_panic).take() {
        return Err(p);
    }
    Ok(slots
        .0
        .into_iter()
        .map(|cell| {
            cell.into_inner()
                .expect("every index was claimed and completed")
        })
        .collect())
}

/// Applies `f` to every item, in parallel, preserving order of results.
///
/// Thin compatibility wrapper over [`try_parallel_map`]: a panicking
/// work item re-panics on the calling thread (with the original message
/// and the item index) instead of returning an error. Callers that need
/// to survive a poisoned item should use [`try_parallel_map`].
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    match try_parallel_map(items, f) {
        Ok(out) => out,
        Err(p) => panic!("{p}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..57).collect();
        let out = parallel_map(&items, |_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(out.len(), 57);
        assert_eq!(counter.load(Ordering::SeqCst), 57);
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn matches_sequential_for_stateless_work() {
        let items: Vec<u64> = (0..40).collect();
        let par = parallel_map(&items, |&x| x * x % 17);
        let seq: Vec<u64> = items.iter().map(|&x| x * x % 17).collect();
        assert_eq!(par, seq);
    }

    /// A panic in one item is contained: the batch still reports every
    /// other result path, the error carries the lowest panicking index,
    /// and the pool keeps serving later batches. Runs on whatever
    /// thread count the host gives us — the sequential fallback has the
    /// same error surface by contract.
    #[test]
    fn panic_is_contained_and_reported() {
        let items: Vec<u64> = (0..16).collect();
        let err = try_parallel_map(&items, |&x| {
            assert!(!(x == 5 || x == 11), "boom at {x}");
            x + 1
        })
        .unwrap_err();
        assert_eq!(err.index, 5, "lowest panicking index wins: {err}");
        assert!(
            err.message.contains("boom at 5"),
            "message: {}",
            err.message
        );

        // The pool drains and rejoins: the very next batch succeeds and
        // is bit-for-bit the sequential answer.
        let ok = try_parallel_map(&items, |&x| x * 3).expect("pool recovered");
        assert_eq!(ok, items.iter().map(|&x| x * 3).collect::<Vec<_>>());
    }

    /// Worker accounting, the programmatic override, determinism under
    /// forced threads, and the pool-path panic/recovery cycle — one
    /// test, because the override is process global and the test runner
    /// is parallel.
    #[test]
    fn worker_accounting_honours_items_and_overrides() {
        // Caps with no override installed.
        let before = configured_threads();
        assert!(before >= 1 && hardware_threads() >= 1);
        assert_eq!(effective_workers(0), 0);
        assert_eq!(effective_workers(1), 1);
        assert_eq!(effective_workers(usize::MAX), before);
        assert!(effective_workers(3) <= 3);
        // The override wins over hardware (and env) and is reversible.
        set_thread_override(Some(3));
        assert_eq!(configured_threads(), 3);
        assert_eq!(effective_workers(usize::MAX), 3);
        assert_eq!(effective_workers(2), 2);
        set_thread_override(Some(0)); // clamped to ≥ 1
        assert_eq!(configured_threads(), 1);
        // Forcing multiple workers on any host must not change results:
        // the order-preserving merge is thread-count-agnostic, and the
        // persistent pool replays the scoped-spawn results bit-for-bit.
        let items: Vec<u64> = (0..64).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x * 31 % 13).collect();
        set_thread_override(Some(4));
        let stats_before = pool_stats();
        assert_eq!(parallel_map(&items, |&x| x * 31 % 13), seq);
        let stats_after = pool_stats();
        assert!(stats_after.workers >= 1, "pool threads were spawned");
        assert!(
            stats_after.tasks >= stats_before.tasks + items.len() as u64,
            "every item was accounted as a pool task"
        );
        assert!(stats_after.batches > stats_before.batches);
        // Pool-path panic containment: contained, reported, and the
        // pool (with live threads this time) drains and rejoins.
        let err = try_parallel_map(&items, |&x| {
            assert!(x != 9, "pool boom");
            x
        })
        .unwrap_err();
        assert_eq!(err.index, 9);
        assert!(err.message.contains("pool boom"));
        assert_eq!(parallel_map(&items, |&x| x * 31 % 13), seq);
        // Nested submission must not deadlock: caller-runs guarantees
        // forward progress even with every pool thread occupied.
        let outer: Vec<u64> = (0..4).collect();
        let nested = parallel_map(&outer, |&o| {
            let inner: Vec<u64> = (0..8).collect();
            parallel_map(&inner, |&i| o * 100 + i).iter().sum::<u64>()
        });
        assert_eq!(
            nested,
            (0..4)
                .map(|o| (0..8).map(|i| o * 100 + i).sum())
                .collect::<Vec<u64>>()
        );
        set_thread_override(None);
        assert_eq!(configured_threads(), before);
    }

    /// Spawned jobs: results arrive through the captured slot, a
    /// panicking job is contained (pool thread survives, error surfaces
    /// from `wait`), a dropped handle leaks nothing, and caller-runs
    /// guarantees completion even if every pool thread is busy.
    #[test]
    fn spawned_jobs_complete_contain_panics_and_survive_drops() {
        use std::sync::Mutex;
        let before = pool_stats();
        // Plain completion through a shared slot.
        let out = Arc::new(Mutex::new(None));
        let out2 = Arc::clone(&out);
        let h = spawn(move || *out2.lock().unwrap() = Some(40 + 2));
        h.wait().expect("job ran");
        assert_eq!(*out.lock().unwrap(), Some(42));
        // Panic containment: the error carries the message, and the
        // pool keeps serving later jobs and batches.
        let err = spawn(|| panic!("job boom")).wait().unwrap_err();
        assert!(err.message.contains("job boom"), "{err}");
        let ok = Arc::new(AtomicUsize::new(0));
        let ok2 = Arc::clone(&ok);
        spawn(move || {
            ok2.fetch_add(7, Ordering::SeqCst);
        })
        .wait()
        .expect("pool recovered after job panic");
        assert_eq!(ok.load(Ordering::SeqCst), 7);
        let items: Vec<u64> = (0..16).collect();
        assert_eq!(
            parallel_map(&items, |&x| x + 1),
            (1..=16).collect::<Vec<_>>()
        );
        // Dropped handle: the job still runs to completion on the pool
        // (its captures keep everything alive); wait for the side
        // effect rather than the handle.
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        drop(spawn(move || {
            seen2.fetch_add(1, Ordering::SeqCst);
        }));
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        while seen.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(seen.load(Ordering::SeqCst), 1, "dropped job still ran");
        let after = pool_stats();
        assert!(after.jobs >= before.jobs + 4, "jobs were accounted");
        assert!(after.tasks >= before.tasks + 4, "jobs count as pool tasks");
    }

    #[test]
    fn uneven_item_costs_still_complete_in_order() {
        let items: Vec<u64> = (0..32).collect();
        let out = parallel_map(&items, |&x| {
            if x % 7 == 0 {
                // Simulate a heavy item.
                let mut acc = 0u64;
                for i in 0..20_000 {
                    acc = acc.wrapping_add(i * x);
                }
                std::hint::black_box(acc);
            }
            x + 1
        });
        assert_eq!(out, (1..=32).collect::<Vec<_>>());
    }
}
