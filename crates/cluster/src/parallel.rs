//! Scoped parallel map for independent work items.
//!
//! Each work item (a vendor candidate in the scheduler hot path, or a
//! "build scenario, run scheduler" job in experiment sweeps) is
//! independent: no shared mutable state, so data-race freedom by
//! construction. Work is pulled from an atomic counter so uneven item
//! costs (Titan's MILPs vs. EFT's greedy) balance automatically.
//!
//! Each worker accumulates `(index, result)` pairs in a private vector;
//! results are merged by index after the workers join. No lock or atomic
//! write per item on the hot path (the mutex-per-item slots of the first
//! version cost a lock round-trip per result), and the per-item type only
//! needs `Send`, not `Sync`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Sentinel for "no programmatic override installed".
const UNSET: usize = usize::MAX;

/// Programmatic thread override ([`set_thread_override`]); beats the
/// `PDFTSP_THREADS` environment variable when both are present.
static EXPLICIT: AtomicUsize = AtomicUsize::new(UNSET);

/// `PDFTSP_THREADS` parsed once per process (clamped to ≥ 1).
fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("PDFTSP_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|n| n.max(1))
    })
}

/// The host's hardware parallelism (what `available_parallelism` reports;
/// 4 when the platform cannot say).
#[must_use]
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

/// Installs (or with `None` removes) a process-wide worker-thread
/// override, taking precedence over `PDFTSP_THREADS`. Benchmarks use this
/// to sweep vendor-scaling points; schedulers cache the value at
/// construction, so set it before constructing them.
pub fn set_thread_override(threads: Option<usize>) {
    EXPLICIT.store(threads.map_or(UNSET, |n| n.max(1)), Ordering::Relaxed);
}

/// The active override, if any: programmatic first, then `PDFTSP_THREADS`.
#[must_use]
pub fn thread_override() -> Option<usize> {
    match EXPLICIT.load(Ordering::Relaxed) {
        UNSET => env_threads(),
        n => Some(n),
    }
}

/// Worker threads parallel paths should use: the override when installed,
/// otherwise the hardware's parallelism.
#[must_use]
pub fn configured_threads() -> usize {
    thread_override().unwrap_or_else(hardware_threads)
}

/// How many workers [`parallel_map`] will actually spawn for a batch of
/// `items` work items: `min(items, configured_threads)`. Exposed so
/// benchmark emitters can report the real thread count used by the
/// parallel paths instead of guessing.
#[must_use]
pub fn effective_workers(items: usize) -> usize {
    configured_threads().min(items)
}

/// Applies `f` to every item, in parallel, preserving order of results.
///
/// Spawns at most [`effective_workers`]`(items)` workers. Falls back to a
/// sequential loop for 0/1 items or a single configured thread. Results
/// are merged by item index, so the output is deterministic regardless of
/// worker count.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = effective_workers(items.len());
    if items.len() <= 1 || workers <= 1 {
        return items.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        let mut out: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
        for handle in handles {
            for (i, r) in handle.join().expect("worker panicked") {
                debug_assert!(out[i].is_none(), "index handed out twice");
                out[i] = Some(r);
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("every index was processed"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn runs_every_item_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..57).collect();
        let out = parallel_map(&items, |_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(out.len(), 57);
        assert_eq!(counter.load(Ordering::SeqCst), 57);
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn matches_sequential_for_stateless_work() {
        let items: Vec<u64> = (0..40).collect();
        let par = parallel_map(&items, |&x| x * x % 17);
        let seq: Vec<u64> = items.iter().map(|&x| x * x % 17).collect();
        assert_eq!(par, seq);
    }

    /// Worker accounting, the programmatic override, and determinism
    /// under forced threads — one test, because the override is process
    /// global and the test runner is parallel.
    #[test]
    fn worker_accounting_honours_items_and_overrides() {
        // Caps with no override installed.
        let before = configured_threads();
        assert!(before >= 1 && hardware_threads() >= 1);
        assert_eq!(effective_workers(0), 0);
        assert_eq!(effective_workers(1), 1);
        assert_eq!(effective_workers(usize::MAX), before);
        assert!(effective_workers(3) <= 3);
        // The override wins over hardware (and env) and is reversible.
        set_thread_override(Some(3));
        assert_eq!(configured_threads(), 3);
        assert_eq!(effective_workers(usize::MAX), 3);
        assert_eq!(effective_workers(2), 2);
        set_thread_override(Some(0)); // clamped to ≥ 1
        assert_eq!(configured_threads(), 1);
        // Forcing multiple workers on any host must not change results:
        // the order-preserving merge is thread-count-agnostic.
        let items: Vec<u64> = (0..64).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x * 31 % 13).collect();
        set_thread_override(Some(4));
        assert_eq!(parallel_map(&items, |&x| x * 31 % 13), seq);
        set_thread_override(None);
        assert_eq!(configured_threads(), before);
    }

    #[test]
    fn uneven_item_costs_still_complete_in_order() {
        let items: Vec<u64> = (0..32).collect();
        let out = parallel_map(&items, |&x| {
            if x % 7 == 0 {
                // Simulate a heavy item.
                let mut acc = 0u64;
                for i in 0..20_000 {
                    acc = acc.wrapping_add(i * x);
                }
                std::hint::black_box(acc);
            }
            x + 1
        });
        assert_eq!(out, (1..=32).collect::<Vec<_>>());
    }
}
