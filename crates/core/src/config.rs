//! Configuration of the pdFTSP algorithm.

use crate::kernel::KernelChoice;

/// How the dual-update multipliers `α` and `β` of Eqs. (7)–(8) are chosen.
///
/// Lemma 2 sets `α = max_i b_i/M_i` and `β = max_i b_i/r_i` — offline
/// quantities (maxima over *all* tasks). Online, the provider either fixes
/// them from historical knowledge or tracks the running maximum of the
/// tasks seen so far (with floors so early tasks are not under-priced).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlphaBeta {
    /// Operator-supplied constants.
    Fixed {
        /// The `α` multiplier of the compute-price update (7).
        alpha: f64,
        /// The `β` multiplier of the memory-price update (8).
        beta: f64,
    },
    /// Running maxima over the tasks handled so far, floored at the given
    /// values: `α = max_i b_i/M_i` (in pricing units, as in Lemma 2) and a
    /// *footprint-normalized* `β = max_i b_i/(r_i · ℓ_i)` where `ℓ_i` is
    /// the task's minimum service time in slots.
    ///
    /// Lemma 2's `β = max_i b_i/r_i` compares the bid against ONE slot's
    /// memory, while the admission test `F(il)` charges `φ` on the task's
    /// whole footprint `r_i · |l|` — so the literal value over-prices
    /// memory by a factor of the schedule length and rejects profitable
    /// tasks when memory is barely used. Normalizing by `ℓ_i` makes the
    /// memory price reach bid level as memory actually saturates, exactly
    /// parallel to how `α = b_i/M_i` relates to the compute footprint
    /// `Σ s = M_i`. The capacity guarantee is unaffected because
    /// Algorithm 1 line 8 checks capacity explicitly; the Lemma-2-literal
    /// value remains available through [`AlphaBeta::Fixed`]. (Ablation
    /// bench: `alpha_beta`.)
    RunningMax {
        /// Lower bound on `α`.
        floor_alpha: f64,
        /// Lower bound on `β`.
        floor_beta: f64,
    },
}

/// How Algorithm 1 treats residual capacity.
///
/// The default is [`CapacityPolicy::MaskSaturated`]: it reads Algorithm
/// 1's "enough resources" check into the schedule search itself, so the
/// DP never proposes a committed-full cell and no profitable task is
/// wasted on a collision. [`CapacityPolicy::RejectOnOverflow`] is the
/// pseudocode-literal behaviour (kept for the ablation bench): prices
/// alone steer the DP and collisions burn the task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapacityPolicy {
    /// Pseudocode-literal: schedules are generated from prices alone
    /// (Algorithm 2 never looks at the ledger); if a chosen `(k, t)` lacks
    /// residual capacity the task is rejected at line 8 — Lemma 1's
    /// Almost-Feasible → Feasible conversion.
    RejectOnOverflow,
    /// Default: the DP masks `(k, t)` cells whose residual capacity
    /// cannot host the task, so generated schedules are always
    /// committable (Lemma 1's conversion becomes a no-op; all other
    /// analysis is unchanged).
    MaskSaturated,
}

/// Which payment rule Eq. (14) uses.
///
/// The default is [`PricingRule::WithEnergy`]: Eq. (14)'s terms *plus*
/// the schedule's operational cost, which is the only reading consistent
/// with the truthfulness proof's premise `F(il) = b_i − p_i` (Theorem 3).
/// Under the verbatim Eq. (14) a truthful loser whose surplus deficit is
/// smaller than its energy cost can profitably overbid — our property
/// tests caught exactly that, so the verbatim rule is kept only as a
/// documented ablation. Both rules are individually rational
/// (`F > 0 ⟹ p_i < b_i`) and bid-independent for winners.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PricingRule {
    /// Eq. (14) verbatim: vendor price + marginal resource prices times
    /// consumption; the operational cost stays with the provider.
    /// **Not truthful** when energy costs are material — ablation only.
    PaperEq14,
    /// Eq. (14) plus the schedule's operational cost `Σ e_ikt` (default).
    WithEnergy,
}

/// Which functional form the dual-price updates take.
///
/// The paper's Eqs. (7)–(8) are multiplicative-plus-additive — prices
/// compound with load, which is what makes saturated cells price
/// themselves out (Lemma 2). The alternatives exist to *measure* that
/// design choice (ablation bench `dual_rule`):
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DualRule {
    /// Eqs. (7)–(8) as published: `λ ← λ(1 + s/C) + η·α·b̄·s/C`.
    Multiplicative,
    /// Additive only: `λ ← λ + η·α·b̄·s/C` — prices grow linearly with
    /// load and never compound, so heavily shared cells stay too cheap.
    Linear,
    /// No prices at all (`λ = φ = 0` forever): admission reduces to
    /// `b_il > 0` plus the capacity check — a greedy profitable-first
    /// mechanism with no load steering and no meaningful payments.
    Off,
}

/// Which per-arrival evaluation pipeline [`crate::Pdftsp`] runs.
///
/// Both pipelines make bit-identical admission, scheduling, payment, and
/// dual-update decisions (proven by `tests/pipeline_equivalence.rs`);
/// they differ only in speed and in the bookkeeping recorded for tasks
/// that were *rejected anyway*: a pruned vendor's `F(il)` is proven
/// non-positive without being computed, so the reject record may carry
/// `None` instead of the exact value — or, when another vendor survived,
/// the (never larger, still non-positive) maximum over the survivors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalPipeline {
    /// The straight-line implementation: one full DP per vendor, deltas
    /// recomputed per row, fresh allocations per call. Kept as the
    /// equivalence oracle and as the baseline of the latency benches.
    Reference,
    /// The production path (default): one shared delta grid per arrival,
    /// a reusable DP arena, admission pruning from column-minima bounds,
    /// early DP-row termination, and (above
    /// [`PdftspConfig::parallel_vendor_min`] surviving vendors) parallel
    /// vendor evaluation.
    Optimized,
}

/// Prediction-driven dual pre-heating (spot-market scenarios).
///
/// Algorithm 1 starts all dual prices at zero, so the first tasks of a
/// burst buy capacity at trivially low prices even when a forecast says
/// the burst will over-subscribe the cluster moments later. When a
/// provider has a prediction signal — forecast arrival intensity and
/// spot prices over a lookahead window — it can *pre-heat* the λ/φ
/// grids: slots whose forecast demand exceeds capacity start at a
/// price proportional to the forecast bid density, so early low-value
/// arrivals no longer lock out the predicted high-value wave.
///
/// The forecast is computed deterministically from the scenario at
/// scheduler construction (a moving-window aggregate of arriving work,
/// bids, and memory), so it is a pure function of the inputs: sharded
/// services pre-heat each shard identically regardless of worker count
/// and the bit-determinism contract is preserved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreheatSpec {
    /// Forecast window in slots: demand arriving within `lookahead` of
    /// a slot contributes to that slot's forecast.
    pub lookahead: usize,
    /// Scale on the seeded prices (0 disables; 1 seeds saturated slots
    /// at the full forecast bid density).
    pub gain: f64,
}

impl Default for PreheatSpec {
    fn default() -> Self {
        PreheatSpec {
            lookahead: 6,
            gain: 0.5,
        }
    }
}

/// Full algorithm configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PdftspConfig {
    /// `α`/`β` selection.
    pub alpha_beta: AlphaBeta,
    /// Samples per compute pricing unit: the dual arithmetic of
    /// Eqs. (7)–(10) runs in these units.
    ///
    /// Lemma 2 assumes units scaled so that `b̄_il ≥ 1` ("we can scale the
    /// units"); 1000 samples/unit achieves that for the paper's workloads
    /// (datasets of 5–20k samples, bids proportional to work) and makes
    /// the additive price seeding of Eqs. (7)–(8) meaningful: each commit
    /// raises a cell's price by a load-proportional step, so prices ramp
    /// to bid level roughly as the cell saturates, steering later tasks
    /// to other cells. Run the unit-scaling ablation bench to see both
    /// failure modes: raw units (1.0) leave prices ≈ 0 so every task
    /// piles onto the same cheap cells and dies at the line-8 capacity
    /// check, while oversized units price profitable tasks out of a
    /// near-empty cluster.
    pub compute_unit: f64,
    /// Damping factor applied to `α` and `β` inside the dual updates
    /// (Eqs. 7–8 become `… + η·α·b̄·s/C`).
    ///
    /// The paper never states the `α`, `β` values its experiments used.
    /// The Lemma-2 maxima are driven by outlier tasks (highest value per
    /// unit of work), so seeding prices at the full maxima rejects
    /// *typical* tasks when cells are only ~40% full — visibly below the
    /// paper's reported welfare at light load. `η ≈ 0.2–0.3` recenters the
    /// price ramp on the typical task (for the log-normal valuation
    /// spread of the workload generator, `median/max ≈ 0.3`; a grid
    /// sweep across offered loads lands on `η = 0.2`), so cells
    /// price out ordinary work only as they approach saturation while
    /// still reserving late capacity for high-value bids. `η = 1`
    /// recovers the literal maxima. Swept by the `alpha_beta` ablation
    /// bench.
    pub seed_damping: f64,
    /// Dual-update functional form (paper vs ablations).
    pub dual_rule: DualRule,
    /// Capacity policy (paper-faithful vs masking ablation).
    pub capacity_policy: CapacityPolicy,
    /// Payment rule.
    pub pricing: PricingRule,
    /// Which evaluation pipeline handles arrivals.
    pub pipeline: EvalPipeline,
    /// Minimum number of admission-surviving vendors before their DPs run
    /// under the scoped parallel map; below it the sequential loop (which
    /// additionally skips vendors that cannot beat the incumbent) is
    /// faster. The paper's scenarios quote ≤ 5 vendors per task, so the
    /// default keeps them sequential; vendor-rich markets cross it. A
    /// value at the floor (≤ 2) forces the parallel branch even on a
    /// single hardware thread (tests use this); larger values also
    /// require more than one hardware thread at scheduler construction.
    pub parallel_vendor_min: usize,
    /// Which min-plus row kernel the DP dispatches (scalar or SIMD; both
    /// bit-identical). Resolved once at scheduler construction;
    /// [`KernelChoice::Auto`] honours the `PDFTSP_KERNEL` environment
    /// override and otherwise takes SIMD whenever the build carries it.
    pub kernel: KernelChoice,
    /// Optional prediction-driven dual pre-heating (spot scenarios).
    /// `None` (default) keeps Algorithm 1's zero-initialized duals.
    pub preheat: Option<PreheatSpec>,
}

impl Default for PdftspConfig {
    fn default() -> Self {
        PdftspConfig {
            alpha_beta: AlphaBeta::RunningMax {
                floor_alpha: 0.0,
                floor_beta: 0.0,
            },
            compute_unit: 1000.0,
            seed_damping: 0.2,
            dual_rule: DualRule::Multiplicative,
            capacity_policy: CapacityPolicy::MaskSaturated,
            pricing: PricingRule::WithEnergy,
            pipeline: EvalPipeline::Optimized,
            parallel_vendor_min: 8,
            kernel: KernelChoice::Auto,
            preheat: None,
        }
    }
}

impl PdftspConfig {
    /// The masking-ablation variant of this config.
    #[must_use]
    pub fn with_masking(self) -> Self {
        PdftspConfig {
            capacity_policy: CapacityPolicy::MaskSaturated,
            ..self
        }
    }

    /// The pseudocode-literal variant (prices only; collisions reject).
    #[must_use]
    pub fn strict(self) -> Self {
        PdftspConfig {
            capacity_policy: CapacityPolicy::RejectOnOverflow,
            ..self
        }
    }

    /// Runs the straight-line reference pipeline (equivalence oracle /
    /// latency baseline).
    #[must_use]
    pub fn reference(self) -> Self {
        PdftspConfig {
            pipeline: EvalPipeline::Reference,
            ..self
        }
    }

    /// Overrides the parallel-vendor threshold.
    #[must_use]
    pub fn with_parallel_vendor_min(self, parallel_vendor_min: usize) -> Self {
        PdftspConfig {
            parallel_vendor_min,
            ..self
        }
    }

    /// Selects the DP row kernel.
    #[must_use]
    pub fn with_kernel(self, kernel: KernelChoice) -> Self {
        PdftspConfig { kernel, ..self }
    }

    /// Enables prediction-driven dual pre-heating.
    #[must_use]
    pub fn with_preheat(self, preheat: PreheatSpec) -> Self {
        PdftspConfig {
            preheat: Some(preheat),
            ..self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_masking_with_eq14_pricing() {
        let c = PdftspConfig::default();
        assert_eq!(c.capacity_policy, CapacityPolicy::MaskSaturated);
        assert_eq!(c.pricing, PricingRule::WithEnergy);
        assert!(c.compute_unit > 0.0);
        assert_eq!(c.kernel, KernelChoice::Auto);
        assert_eq!(
            c.with_kernel(KernelChoice::Scalar).kernel,
            KernelChoice::Scalar
        );
    }

    #[test]
    fn policy_variants_flip_only_the_policy() {
        let c = PdftspConfig::default().strict();
        assert_eq!(c.capacity_policy, CapacityPolicy::RejectOnOverflow);
        assert_eq!(c.pricing, PricingRule::WithEnergy);
        assert_eq!(
            c.with_masking().capacity_policy,
            CapacityPolicy::MaskSaturated
        );
    }

    #[test]
    fn default_pipeline_is_optimized_with_reference_opt_out() {
        let c = PdftspConfig::default();
        assert_eq!(c.pipeline, EvalPipeline::Optimized);
        assert!(c.parallel_vendor_min >= 2);
        let r = c.reference();
        assert_eq!(r.pipeline, EvalPipeline::Reference);
        assert_eq!(r.capacity_policy, c.capacity_policy);
        assert_eq!(c.with_parallel_vendor_min(3).parallel_vendor_min, 3);
    }
}
