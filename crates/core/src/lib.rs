#![cfg_attr(feature = "simd", feature(portable_simd))]
//! # pdftsp-core
//!
//! The paper's primary contribution: **pdFTSP**, the online primal-dual
//! joint scheduling and pricing mechanism for multi-LoRA fine-tuning tasks
//! (Zheng et al., ICPP 2024, Section 3).
//!
//! * [`config`] — algorithm knobs: the `α`/`β` multipliers of the dual
//!   updates (fixed or running-max estimates of Lemma 2's
//!   `max_i b_i/M_i`, `max_i b_i/r_i`), the compute pricing unit, the
//!   capacity policy, and the pricing rule.
//! * [`duals`] — the dual-price state `λ_kt` (compute) and `φ_kt` (memory)
//!   with the multiplicative updates of Eqs. (7)–(8).
//! * [`dp`] — Algorithm 2's `findSchedule`: the dynamic program of
//!   Eqs. (12)–(13) that finds, for a given vendor delay, the cheapest
//!   dual-priced execution plan meeting the work requirement by the
//!   deadline. Two pipelines: the production grid path (scratch reuse,
//!   row caps, early termination) and the straight-line reference kept
//!   as the equivalence oracle.
//! * [`grid`] — the per-arrival shared delta grid: every `(node, slot)`
//!   cost `Δ_kt` computed once per arrival, sliced by every vendor's DP,
//!   plus the column-minima bounds behind admission pruning.
//! * [`scheduler`] — Algorithm 1: per-arrival schedule selection across
//!   vendors, the `F(il)` admission test of Eq. (10), dual updates,
//!   the capacity check, and commitment.
//! * [`pricing`] — the payment rule of Eq. (14).
//! * [`probe`] — side-effect-free auction probes used by the
//!   truthfulness (Fig. 10) and individual-rationality (Fig. 11)
//!   experiments;
//! * [`analysis`] — theory instrumentation: per-run empirical
//!   verification of the Theorem-5 primal/dual inequality chain.

pub mod analysis;
pub mod config;
pub mod dp;
pub mod duals;
pub mod grid;
pub mod kernel;
pub mod pricing;
pub mod probe;
pub mod scheduler;

pub use analysis::{audit_guarantees, GuaranteeAudit};
pub use config::{
    AlphaBeta, CapacityPolicy, DualRule, EvalPipeline, PdftspConfig, PreheatSpec, PricingRule,
};
pub use dp::{
    find_schedule, find_schedule_on_grid, find_schedule_reference, DpBuffers, DpContext, DpResult,
    EvalScratch,
};
pub use duals::DualState;
pub use grid::DeltaGrid;
pub use kernel::{KernelChoice, KernelDispatch, KernelKind};
pub use pricing::payment;
pub use probe::{probe_bid, BidProbe};
pub use scheduler::{AuctionRecord, Pdftsp};
