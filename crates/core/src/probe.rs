//! Side-effect-free auction probes.
//!
//! The truthfulness experiment (paper Fig. 10) asks: for a fixed task and a
//! fixed auction state, how does the bidder's *utility* change as the
//! declared bid sweeps away from the true valuation? [`probe_bid`] answers
//! without mutating the scheduler: it re-evaluates the schedule search and
//! the admission test `F(il) > 0` at the declared bid and prices the
//! hypothetical win with Eq. (14).

use crate::pricing::payment;
use crate::scheduler::Pdftsp;
use pdftsp_types::{Scenario, Task};

/// Outcome of a hypothetical bid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BidProbe {
    /// The declared bid probed.
    pub declared_bid: f64,
    /// Whether the bid would win.
    pub admitted: bool,
    /// Payment if it won (0 otherwise).
    pub payment: f64,
    /// Utility `v_i − p_i` if it won, else 0 (Definition 1), evaluated at
    /// the task's *true* valuation.
    pub utility: f64,
}

/// Probes the auction outcome for `task` if it declared `bid` instead of
/// its true valuation, against `scheduler`'s current state. The scheduler
/// is not modified.
#[must_use]
pub fn probe_bid(scheduler: &Pdftsp, task: &Task, bid: f64, scenario: &Scenario) -> BidProbe {
    let probe_task = task.with_declared_bid(bid);
    // A pruned-away candidate has F(il) ≤ 0 proven, so `best: None` with
    // `pruned: true` still means "loses" — identical probe outcomes under
    // both pipelines.
    let Some(cand) = scheduler.evaluate(&probe_task, scenario).best else {
        return BidProbe {
            declared_bid: bid,
            admitted: false,
            payment: 0.0,
            utility: 0.0,
        };
    };
    let wins = cand.f_value > 0.0
        && scheduler
            .ledger()
            .fits_schedule(&probe_task, &cand.schedule);
    if !wins {
        return BidProbe {
            declared_bid: bid,
            admitted: false,
            payment: 0.0,
            utility: 0.0,
        };
    }
    let p = payment(
        scheduler_config_pricing(scheduler),
        &probe_task,
        &cand.schedule,
        cand.max_lambda,
        cand.max_phi,
        scheduler_config_unit(scheduler),
        cand.energy,
    );
    BidProbe {
        declared_bid: bid,
        admitted: true,
        payment: p,
        utility: task.valuation - p,
    }
}

// Narrow accessors so `probe_bid` stays a free function with a clean
// signature while `PdftspConfig` stays private to the scheduler.
fn scheduler_config_pricing(s: &Pdftsp) -> crate::config::PricingRule {
    s.config().pricing
}

fn scheduler_config_unit(s: &Pdftsp) -> f64 {
    s.config().compute_unit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PdftspConfig;
    use pdftsp_types::{CostGrid, GpuModel, NodeSpec, TaskBuilder};

    fn scenario() -> Scenario {
        let tasks = vec![TaskBuilder::new(0, 0, 7)
            .dataset(2000)
            .memory_gb(5.0)
            .bid(10.0)
            .valuation(10.0)
            .rates(vec![1000])
            .build()
            .unwrap()];
        Scenario {
            horizon: 8,
            base_model_gb: 2.0,
            nodes: vec![NodeSpec::new(0, GpuModel::A100_80, 4000)],
            quotes: vec![vec![]],
            cost: CostGrid::flat(1, 8, 0.5),
            tasks,
        }
    }

    #[test]
    fn probe_does_not_mutate_state() {
        let sc = scenario();
        let p = Pdftsp::new(&sc, PdftspConfig::default());
        let before = p.duals().dual_objective();
        let _ = probe_bid(&p, &sc.tasks[0], 50.0, &sc);
        let _ = probe_bid(&p, &sc.tasks[0], 0.1, &sc);
        assert_eq!(p.duals().dual_objective(), before);
        assert_eq!(p.records().len(), 0);
    }

    #[test]
    fn low_bids_lose_high_bids_win_with_same_payment() {
        // Energy cost = 2 slots × 0.5 = 1.0; F = bid − 1 under zero duals.
        let sc = scenario();
        let p = Pdftsp::new(&sc, PdftspConfig::default());
        let lose = probe_bid(&p, &sc.tasks[0], 0.5, &sc);
        assert!(!lose.admitted);
        assert_eq!(lose.utility, 0.0);
        let win_a = probe_bid(&p, &sc.tasks[0], 5.0, &sc);
        let win_b = probe_bid(&p, &sc.tasks[0], 500.0, &sc);
        assert!(win_a.admitted && win_b.admitted);
        // Payment independent of the declared bid.
        assert!((win_a.payment - win_b.payment).abs() < 1e-12);
        // Utility evaluated at the true valuation, so both are equal too.
        assert!((win_a.utility - win_b.utility).abs() < 1e-12);
    }

    #[test]
    fn truthful_bid_maximizes_utility_on_a_sweep() {
        let sc = scenario();
        let p = Pdftsp::new(&sc, PdftspConfig::default());
        let task = &sc.tasks[0];
        let truthful = probe_bid(&p, task, task.valuation, &sc);
        for declared in [0.1, 0.5, 1.0, 3.0, 8.0, 10.0, 12.0, 20.0, 100.0] {
            let probe = probe_bid(&p, task, declared, &sc);
            assert!(
                probe.utility <= truthful.utility + 1e-9,
                "bid {declared} gives utility {} > truthful {}",
                probe.utility,
                truthful.utility
            );
        }
    }
}
