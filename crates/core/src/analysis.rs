//! Theory instrumentation: empirical verification of the paper's
//! performance-analysis chain (Section 4.4 / Appendix).
//!
//! Theorem 5 bounds the competitive ratio through the chain
//!
//! ```text
//! P^I = P1^I  ≥  (1/ρ) · P̃1^I  ≥  (1/ρ) · D1^I / (1 + max{α, β})  ≥  OPT / (ρ (1 + max{α, β}))
//! ```
//!
//! where `P̃1` is the *almost-feasible* welfare (tasks passing the
//! `F(il) > 0` test, before the capacity check), `ρ` is Lemma 3's
//! conversion loss, and the middle inequality is Lemma 1. This module
//! recomputes every quantity from an actual run's auction records and
//! dual state, so each inequality can be asserted on real executions —
//! which is how the repository caught that the η-damped updates tighten
//! Lemma 1's constant to `1 + η·max{α, β}`.

use crate::scheduler::Pdftsp;

/// All the quantities of the Theorem-5 chain, measured on one run.
#[derive(Debug, Clone, PartialEq)]
pub struct GuaranteeAudit {
    /// Committed (feasible) welfare `P1^I = Σ_{i ∈ S_c} b_il`.
    pub primal_welfare: f64,
    /// Almost-feasible welfare `P̃1^I = Σ_{i ∈ S_a} b_il` (includes tasks
    /// whose schedule was refused at the capacity check).
    pub almost_feasible_welfare: f64,
    /// Dual objective `D1^I` (Eq. 6) at the final dual prices.
    pub dual_objective: f64,
    /// Empirical `ρ = P̃1^I / P1^I` (1.0 under the masking policy, which
    /// empties `S_a \ S_c` by construction).
    pub rho_empirical: f64,
    /// Lemma 1's constant for this run: `1 + η·max{α, β}` with the final
    /// (running-max) `α`, `β` and the configured damping `η`.
    pub lemma1_constant: f64,
    /// `D1^I / P̃1^I` — must stay at or below [`GuaranteeAudit::lemma1_constant`].
    pub duality_gap_ratio: f64,
    /// Whether Lemma 1's inequality `P̃1 ≥ D1 / (1+η·max{α,β})` held.
    pub lemma1_holds: bool,
    /// Number of tasks in `S_a` (positive surplus).
    pub almost_feasible_tasks: usize,
    /// Number of tasks in `S_c` (committed).
    pub committed_tasks: usize,
}

/// Audits a **finished** run: call after every task has been decided.
#[must_use]
pub fn audit_guarantees(scheduler: &Pdftsp) -> GuaranteeAudit {
    let mut primal = 0.0;
    let mut almost = 0.0;
    let mut committed_tasks = 0usize;
    let mut almost_feasible_tasks = 0usize;
    for rec in scheduler.records() {
        let Some(b_il) = rec.welfare_increment else {
            continue;
        };
        let positive = rec.f_value.is_some_and(|f| f > 0.0);
        if positive {
            almost_feasible_tasks += 1;
            almost += b_il;
            if rec.admitted {
                committed_tasks += 1;
                primal += b_il;
            } else {
                debug_assert!(
                    rec.capacity_rejected,
                    "F>0 but neither admitted nor capacity-rejected"
                );
            }
        }
    }
    let dual_objective = scheduler.duals().dual_objective();
    let eta = scheduler.config().seed_damping;
    let lemma1_constant = 1.0 + eta * scheduler.alpha().max(scheduler.beta());
    let duality_gap_ratio = if almost > 0.0 {
        dual_objective / almost
    } else if dual_objective <= 1e-9 {
        1.0
    } else {
        f64::INFINITY
    };
    GuaranteeAudit {
        primal_welfare: primal,
        almost_feasible_welfare: almost,
        dual_objective,
        rho_empirical: if primal > 0.0 { almost / primal } else { 1.0 },
        lemma1_constant,
        duality_gap_ratio,
        lemma1_holds: duality_gap_ratio <= lemma1_constant + 1e-9,
        almost_feasible_tasks,
        committed_tasks,
    }
}

impl GuaranteeAudit {
    /// The end-to-end empirical guarantee this run achieved:
    /// `ρ_emp · (1 + η·max{α,β})` — by Theorem 5's chain, the offline
    /// optimum of the schedule-selection problem is within this factor of
    /// the committed welfare *if* the final duals are feasible (Lemma 4).
    #[must_use]
    pub fn implied_ratio_bound(&self) -> f64 {
        self.rho_empirical * self.lemma1_constant
    }

    /// Renders a short human-readable report.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "primal (committed) welfare P1  : {:.2} ({} tasks)\n\
             almost-feasible welfare  P~1   : {:.2} ({} tasks)\n\
             dual objective           D1    : {:.2}\n\
             rho (P~1/P1)                   : {:.4}\n\
             Lemma-1 constant 1+eta*max(a,b): {:.4}\n\
             D1/P~1                         : {:.4}  (Lemma 1 {})\n\
             implied ratio bound            : {:.4}\n",
            self.primal_welfare,
            self.committed_tasks,
            self.almost_feasible_welfare,
            self.almost_feasible_tasks,
            self.dual_objective,
            self.rho_empirical,
            self.lemma1_constant,
            self.duality_gap_ratio,
            if self.lemma1_holds {
                "HOLDS"
            } else {
                "VIOLATED"
            },
            self.implied_ratio_bound(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PdftspConfig;
    use pdftsp_types::{CostGrid, GpuModel, NodeSpec, Scenario, Task, TaskBuilder};

    fn scenario(n_tasks: usize, capacity: u64) -> Scenario {
        let tasks: Vec<Task> = (0..n_tasks)
            .map(|i| {
                TaskBuilder::new(i, 0, 11)
                    .dataset(1000 + 500 * (i as u64 % 4))
                    .memory_gb(4.0 + (i % 3) as f64)
                    .bid(6.0 + i as f64)
                    .rates(vec![1000])
                    .build()
                    .unwrap()
            })
            .collect();
        let quotes = vec![vec![]; n_tasks];
        Scenario {
            horizon: 12,
            base_model_gb: 2.0,
            nodes: vec![NodeSpec::new(0, GpuModel::A100_80, capacity)],
            tasks,
            quotes,
            cost: CostGrid::flat(1, 12, 0.1),
        }
    }

    fn run(config: PdftspConfig, n_tasks: usize, capacity: u64) -> (Pdftsp, GuaranteeAudit) {
        let sc = scenario(n_tasks, capacity);
        let mut s = Pdftsp::new(&sc, config);
        for t in &sc.tasks {
            let _ = s.decide(t, &sc);
        }
        let audit = audit_guarantees(&s);
        (s, audit)
    }

    #[test]
    fn lemma1_holds_on_a_congested_run() {
        let (_, audit) = run(PdftspConfig::default(), 24, 2000);
        assert!(audit.lemma1_holds, "{}", audit.render());
        assert!(audit.dual_objective >= audit.primal_welfare - 1e-9);
    }

    #[test]
    fn masked_policy_has_unit_rho() {
        let (_, audit) = run(PdftspConfig::default(), 24, 2000);
        assert!((audit.rho_empirical - 1.0).abs() < 1e-12);
        assert_eq!(audit.almost_feasible_tasks, audit.committed_tasks);
    }

    #[test]
    fn strict_policy_can_have_rho_above_one() {
        // Tight capacity in strict mode: some F>0 tasks collide.
        let (_, audit) = run(PdftspConfig::default().strict(), 30, 1000);
        assert!(audit.rho_empirical >= 1.0);
        assert!(audit.almost_feasible_tasks >= audit.committed_tasks);
        assert!(audit.lemma1_holds, "{}", audit.render());
    }

    #[test]
    fn lemma1_holds_even_at_full_maxima() {
        let cfg = PdftspConfig {
            seed_damping: 1.0,
            ..PdftspConfig::default()
        };
        let (_, audit) = run(cfg, 24, 2000);
        assert!(audit.lemma1_holds, "{}", audit.render());
    }

    #[test]
    fn empty_run_audits_cleanly() {
        let (_, audit) = run(PdftspConfig::default(), 0, 2000);
        assert_eq!(audit.primal_welfare, 0.0);
        assert_eq!(audit.rho_empirical, 1.0);
        assert!(audit.lemma1_holds);
    }

    #[test]
    fn render_mentions_all_quantities() {
        let (_, audit) = run(PdftspConfig::default(), 10, 2000);
        let text = audit.render();
        for needle in ["P1", "P~1", "D1", "rho", "Lemma-1", "HOLDS"] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }
}
