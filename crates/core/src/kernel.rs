//! The min-plus row kernel behind Algorithm 2's DP sweep.
//!
//! [`apply_candidate`] applies one Pareto-front candidate `(gain, Δ)` to
//! one DP row segment — the innermost loop of the whole scheduler. Two
//! implementations exist:
//!
//! * **scalar** — the straight-line loops, always compiled, and the form
//!   the reference oracle effectively runs;
//! * **simd** — `std::simd` (portable SIMD) over [`LANES`]-wide `f64`
//!   vectors, compiled only under the nightly-gated `simd` cargo feature
//!   and dispatched at runtime to the widest ISA the host supports
//!   (AVX-512F → AVX2 → the build's baseline, SSE2 on x86-64).
//!
//! **Bit-equivalence.** The SIMD path replays the scalar path bit for bit
//! because every lane performs exactly the scalar per-cell operations, in
//! the same candidate order, on the same IEEE-754 doubles:
//!
//! 1. the candidate value is one `add` (`prev[w − gain] + Δ`) — never a
//!    fused multiply-add, which would change rounding;
//! 2. the update keeps the strict `<` tie-break (`select` on `cand <
//!    cur`), so equal candidates never displace an earlier node's cell,
//!    exactly as in the scalar loop;
//! 3. lanes are independent cells: vectorizing across `w` within one
//!    candidate reorders no floating-point reduction (there is none).
//!
//! AVX-512/AVX2/SSE2 all implement IEEE-754 binary64 `add`/`cmp`/blend
//! identically, so the runtime ISA choice cannot change results either.
//! `tests/dp_kernel_equivalence.rs` holds the proof-by-execution.

#[cfg(feature = "simd")]
use std::sync::OnceLock;

/// SIMD lane width of the kernel, and the DP slab's row alignment: every
/// row of [`crate::DpBuffers`]'s flat slab starts at a multiple of this,
/// so full-lane loads never straddle two rows. 8 × f64 maps to one
/// AVX-512 vector, two AVX2 vectors, or four SSE2 vectors.
pub const LANES: usize = 8;

/// Which row kernel a DP arena runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelKind {
    /// Straight-line per-cell loops (always available).
    #[default]
    Scalar,
    /// Portable-SIMD lanes (requires the `simd` cargo feature).
    Simd,
}

impl KernelKind {
    /// Stable name for reports and bench JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Simd => "simd",
        }
    }
}

/// Operator-facing kernel selection ([`crate::PdftspConfig::kernel`]).
///
/// `Auto` honours a `PDFTSP_KERNEL=scalar|simd` environment override and
/// otherwise picks SIMD whenever the build carries it. Resolution happens
/// once per scheduler (or arena) construction, not per DP call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelChoice {
    /// Environment override, else SIMD if compiled in, else scalar.
    #[default]
    Auto,
    /// Force the scalar kernel (also what the reference oracle runs).
    Scalar,
    /// Request the SIMD kernel; falls back to scalar (and says so in the
    /// `fallback_dispatches` counter) when the build lacks the feature.
    Simd,
}

/// A resolved kernel: what will actually run, plus whether a SIMD request
/// had to fall back to scalar because this build does not carry the
/// `simd` feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelDispatch {
    /// The kernel that will run.
    pub kind: KernelKind,
    /// `true` when SIMD was wanted but the scalar kernel runs instead —
    /// each DP invocation under this dispatch counts one
    /// `fallback_dispatches`.
    pub fallback: bool,
}

impl Default for KernelDispatch {
    fn default() -> Self {
        KernelChoice::Auto.resolve()
    }
}

/// Whether this build carries the SIMD kernel (`--features simd`,
/// nightly only).
#[must_use]
pub fn simd_compiled() -> bool {
    cfg!(feature = "simd")
}

/// The ISA the SIMD kernel dispatches to on this host: `"avx512f"`,
/// `"avx2"`, or `"baseline"`; `"none"` on scalar-only builds.
#[must_use]
pub fn simd_isa() -> &'static str {
    #[cfg(feature = "simd")]
    {
        simd_impl::isa_name()
    }
    #[cfg(not(feature = "simd"))]
    {
        "none"
    }
}

/// Cached `PDFTSP_KERNEL` override (read once per process).
fn env_override() -> Option<KernelChoice> {
    use std::sync::OnceLock as Cell;
    static ENV: Cell<Option<KernelChoice>> = Cell::new();
    *ENV.get_or_init(|| match std::env::var("PDFTSP_KERNEL").as_deref() {
        Ok("scalar") => Some(KernelChoice::Scalar),
        Ok("simd") => Some(KernelChoice::Simd),
        _ => None,
    })
}

impl KernelChoice {
    /// Resolves the choice against the build's features and the
    /// `PDFTSP_KERNEL` environment override.
    #[must_use]
    pub fn resolve(self) -> KernelDispatch {
        let effective = match self {
            KernelChoice::Auto => env_override().unwrap_or(KernelChoice::Auto),
            explicit => explicit,
        };
        match effective {
            KernelChoice::Scalar => KernelDispatch {
                kind: KernelKind::Scalar,
                fallback: false,
            },
            KernelChoice::Simd | KernelChoice::Auto => {
                if simd_compiled() {
                    KernelDispatch {
                        kind: KernelKind::Simd,
                        fallback: false,
                    }
                } else {
                    // Only an *explicit* SIMD request that cannot be
                    // honoured is a fallback; `Auto` taking the best
                    // available kernel is just the normal resolution.
                    KernelDispatch {
                        kind: KernelKind::Scalar,
                        fallback: matches!(effective, KernelChoice::Simd),
                    }
                }
            }
        }
    }
}

/// Applies one candidate `(gain, Δ, tag)` to the maintained row segment
/// `[w_lo, w_hi]` of a DP row: `cur[w] ← min(cur[w], source + Δ)` with
/// `source = prev[0]` below `gain` (the floor transition) and
/// `prev[w − gain]` above, tagging improved cells with the candidate's
/// choice tag under a strict `<` (ties keep the incumbent).
///
/// Returns `(lanes, tail_cells)`: full-lane vector updates and
/// scalar-remainder cells. The scalar kernel reports `(0, 0)` — the
/// tallies describe SIMD coverage, not row width.
#[inline]
#[allow(clippy::too_many_arguments)] // hot-path primitive: flat args beat a per-call struct
pub fn apply_candidate(
    kind: KernelKind,
    prev: &[f64],
    cur: &mut [f64],
    crow: &mut [u16],
    w_lo: usize,
    w_hi: usize,
    gain: usize,
    delta: f64,
    tag: u16,
) -> (u64, u64) {
    match kind {
        KernelKind::Scalar => {
            apply_scalar(prev, cur, crow, w_lo, w_hi, gain, delta, tag);
            (0, 0)
        }
        KernelKind::Simd => apply_simd(prev, cur, crow, w_lo, w_hi, gain, delta, tag),
    }
}

/// The scalar row kernel — the exact loops the DP ran before the slab
/// refactor, kept verbatim as the bit-equivalence anchor.
#[allow(clippy::too_many_arguments)]
fn apply_scalar(
    prev: &[f64],
    cur: &mut [f64],
    crow: &mut [u16],
    w_lo: usize,
    w_hi: usize,
    gain: usize,
    delta: f64,
    tag: u16,
) {
    // Below `gain` the transition reads dp[t−1][0] (the reference's
    // saturating_sub); splitting the loop keeps the bound checks and the
    // subtraction out of the dense segment.
    let split = gain.min(w_hi + 1);
    let floor_cand = prev[0] + delta;
    for w in w_lo..split {
        if floor_cand < cur[w] {
            cur[w] = floor_cand;
            crow[w] = tag;
        }
    }
    for w in split.max(w_lo)..=w_hi {
        let cand = prev[w - gain] + delta;
        if cand < cur[w] {
            cur[w] = cand;
            crow[w] = tag;
        }
    }
}

#[cfg(feature = "simd")]
#[allow(clippy::too_many_arguments)]
fn apply_simd(
    prev: &[f64],
    cur: &mut [f64],
    crow: &mut [u16],
    w_lo: usize,
    w_hi: usize,
    gain: usize,
    delta: f64,
    tag: u16,
) -> (u64, u64) {
    // SAFETY: the function pointer was selected by `simd_impl::select`
    // against runtime CPU-feature detection, so the target features its
    // body was compiled with are present on this host.
    unsafe { (simd_row_fn())(prev, cur, crow, w_lo, w_hi, gain, delta, tag) }
}

/// Scalar stand-in so the symbol exists on scalar-only builds; dispatch
/// never routes here ([`KernelChoice::resolve`] falls back to
/// [`KernelKind::Scalar`] when the feature is absent).
#[cfg(not(feature = "simd"))]
#[allow(clippy::too_many_arguments)]
fn apply_simd(
    prev: &[f64],
    cur: &mut [f64],
    crow: &mut [u16],
    w_lo: usize,
    w_hi: usize,
    gain: usize,
    delta: f64,
    tag: u16,
) -> (u64, u64) {
    apply_scalar(prev, cur, crow, w_lo, w_hi, gain, delta, tag);
    (0, 0)
}

#[cfg(feature = "simd")]
fn simd_row_fn() -> simd_impl::RowFn {
    static ROW: OnceLock<simd_impl::RowFn> = OnceLock::new();
    *ROW.get_or_init(simd_impl::select)
}

#[cfg(feature = "simd")]
mod simd_impl {
    //! The portable-SIMD row body, instantiated once per dispatched ISA
    //! via `#[target_feature]` wrappers around an `#[inline(always)]`
    //! core (so each wrapper compiles the body with its own features).

    use super::LANES;
    use std::simd::{cmp::SimdPartialOrd, Select, Simd};

    pub type RowFn = unsafe fn(
        &[f64],     // prev
        &mut [f64], // cur
        &mut [u16], // crow
        usize,      // w_lo
        usize,      // w_hi
        usize,      // gain
        f64,        // delta
        u16,        // tag
    ) -> (u64, u64);

    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn body(
        prev: &[f64],
        cur: &mut [f64],
        crow: &mut [u16],
        w_lo: usize,
        w_hi: usize,
        gain: usize,
        delta: f64,
        tag: u16,
    ) -> (u64, u64) {
        let mut lanes = 0u64;
        let mut tail = 0u64;
        let split = gain.min(w_hi + 1);
        let floor_cand = prev[0] + delta;
        let tag_v = Simd::<u16, LANES>::splat(tag);

        // Floor segment [w_lo, split): one constant candidate per cell.
        let fc_v = Simd::<f64, LANES>::splat(floor_cand);
        let mut w = w_lo;
        while w + LANES <= split {
            let c = Simd::<f64, LANES>::from_slice(&cur[w..]);
            let m = fc_v.simd_lt(c);
            m.select(fc_v, c).copy_to_slice(&mut cur[w..w + LANES]);
            let t = Simd::<u16, LANES>::from_slice(&crow[w..]);
            m.cast::<i16>()
                .select(tag_v, t)
                .copy_to_slice(&mut crow[w..w + LANES]);
            lanes += 1;
            w += LANES;
        }
        while w < split {
            if floor_cand < cur[w] {
                cur[w] = floor_cand;
                crow[w] = tag;
            }
            tail += 1;
            w += 1;
        }

        // Dense segment [max(split, w_lo), w_hi]: prev[w − gain] + Δ. The
        // source lanes are contiguous because `gain` is constant for the
        // candidate, so this is one unaligned load per vector — no gather.
        let delta_v = Simd::<f64, LANES>::splat(delta);
        let mut w = split.max(w_lo);
        while w + LANES <= w_hi + 1 {
            let cand = Simd::<f64, LANES>::from_slice(&prev[w - gain..]) + delta_v;
            let c = Simd::<f64, LANES>::from_slice(&cur[w..]);
            let m = cand.simd_lt(c);
            m.select(cand, c).copy_to_slice(&mut cur[w..w + LANES]);
            let t = Simd::<u16, LANES>::from_slice(&crow[w..]);
            m.cast::<i16>()
                .select(tag_v, t)
                .copy_to_slice(&mut crow[w..w + LANES]);
            lanes += 1;
            w += LANES;
        }
        while w <= w_hi {
            let cand = prev[w - gain] + delta;
            if cand < cur[w] {
                cur[w] = cand;
                crow[w] = tag;
            }
            tail += 1;
            w += 1;
        }
        (lanes, tail)
    }

    /// Baseline instantiation: whatever target features the build was
    /// compiled with (SSE2 on plain x86-64). `unsafe fn` only to share
    /// the [`RowFn`] signature with the feature-gated variants.
    #[allow(clippy::too_many_arguments)]
    unsafe fn row_baseline(
        prev: &[f64],
        cur: &mut [f64],
        crow: &mut [u16],
        w_lo: usize,
        w_hi: usize,
        gain: usize,
        delta: f64,
        tag: u16,
    ) -> (u64, u64) {
        body(prev, cur, crow, w_lo, w_hi, gain, delta, tag)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn row_avx2(
        prev: &[f64],
        cur: &mut [f64],
        crow: &mut [u16],
        w_lo: usize,
        w_hi: usize,
        gain: usize,
        delta: f64,
        tag: u16,
    ) -> (u64, u64) {
        body(prev, cur, crow, w_lo, w_hi, gain, delta, tag)
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn row_avx512(
        prev: &[f64],
        cur: &mut [f64],
        crow: &mut [u16],
        w_lo: usize,
        w_hi: usize,
        gain: usize,
        delta: f64,
        tag: u16,
    ) -> (u64, u64) {
        body(prev, cur, crow, w_lo, w_hi, gain, delta, tag)
    }

    /// Picks the widest instantiation the host CPU supports.
    pub fn select() -> RowFn {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return row_avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return row_avx2;
            }
        }
        row_baseline
    }

    /// The ISA [`select`] lands on (for reports).
    pub fn isa_name() -> &'static str {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return "avx512f";
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                return "avx2";
            }
        }
        "baseline"
    }
}

/// Computes one node's delta row for the grid build:
/// `out[j] = s_price·λ[j] + mem·φ[j] + prices[j]·ew`, with the exact
/// per-cell expression — and operation order — of the reference DP
/// (two multiplies, the energy product first, no FMA contraction), so
/// grid cells stay bit-identical to the reference regardless of kernel.
#[allow(clippy::too_many_arguments)]
pub fn delta_row(
    kind: KernelKind,
    lambda: &[f64],
    phi: &[f64],
    prices: &[f64],
    s_price: f64,
    mem: f64,
    ew: f64,
    out: &mut [f64],
) {
    debug_assert!(lambda.len() == out.len() && phi.len() == out.len() && prices.len() == out.len());
    match kind {
        KernelKind::Scalar => {
            for j in 0..out.len() {
                let e = prices[j] * ew;
                out[j] = s_price * lambda[j] + mem * phi[j] + e;
            }
        }
        KernelKind::Simd => delta_row_simd(lambda, phi, prices, s_price, mem, ew, out),
    }
}

#[cfg(feature = "simd")]
fn delta_row_simd(
    lambda: &[f64],
    phi: &[f64],
    prices: &[f64],
    s_price: f64,
    mem: f64,
    ew: f64,
    out: &mut [f64],
) {
    use std::simd::Simd;
    let sp = Simd::<f64, LANES>::splat(s_price);
    let mm = Simd::<f64, LANES>::splat(mem);
    let ww = Simd::<f64, LANES>::splat(ew);
    let mut j = 0;
    while j + LANES <= out.len() {
        let l = Simd::<f64, LANES>::from_slice(&lambda[j..]);
        let p = Simd::<f64, LANES>::from_slice(&phi[j..]);
        let pr = Simd::<f64, LANES>::from_slice(&prices[j..]);
        // Same association as the scalar expression: (s·λ + m·φ) + e.
        let e = pr * ww;
        (sp * l + mm * p + e).copy_to_slice(&mut out[j..j + LANES]);
        j += LANES;
    }
    while j < out.len() {
        let e = prices[j] * ew;
        out[j] = s_price * lambda[j] + mem * phi[j] + e;
        j += 1;
    }
}

#[cfg(not(feature = "simd"))]
fn delta_row_simd(
    lambda: &[f64],
    phi: &[f64],
    prices: &[f64],
    s_price: f64,
    mem: f64,
    ew: f64,
    out: &mut [f64],
) {
    delta_row(
        KernelKind::Scalar,
        lambda,
        phi,
        prices,
        s_price,
        mem,
        ew,
        out,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn resolve_respects_build_features() {
        let scalar = KernelChoice::Scalar.resolve();
        assert_eq!(scalar.kind, KernelKind::Scalar);
        assert!(!scalar.fallback);
        let simd = KernelChoice::Simd.resolve();
        if simd_compiled() {
            assert_eq!(simd.kind, KernelKind::Simd);
            assert!(!simd.fallback);
        } else {
            assert_eq!(simd.kind, KernelKind::Scalar);
            assert!(simd.fallback, "SIMD request on a scalar build must say so");
            assert_eq!(simd_isa(), "none");
        }
        // Auto always resolves to the best available kernel — never a
        // fallback (unless PDFTSP_KERNEL=simd forces an explicit request).
        let auto = KernelChoice::Auto.resolve();
        assert!(
            !auto.fallback || env_override() == Some(KernelChoice::Simd),
            "Auto must not count as a fallback"
        );
    }

    /// Both kernels, fed identical random rows, must produce bit-identical
    /// values and identical choice tags — including widths that are not
    /// lane multiples and segments narrower than one lane.
    #[test]
    fn kernels_are_bit_identical_on_random_rows() {
        for case in 0..200u64 {
            let mut rng = StdRng::seed_from_u64(0x513D_0000 + case);
            let width = rng.gen_range(1usize..80);
            let w_hi = width - 1;
            let w_lo = rng.gen_range(0..=w_hi);
            let gain = rng.gen_range(1usize..20);
            let delta = rng.gen_range(0.0f64..5.0);
            let tag = rng.gen_range(1u16..40);
            let prev: Vec<f64> = (0..width.max(w_hi + 1))
                .map(|_| {
                    if rng.gen_bool(0.1) {
                        f64::INFINITY
                    } else {
                        rng.gen_range(0.0f64..10.0)
                    }
                })
                .collect();
            let base_cur: Vec<f64> = prev.iter().map(|v| v + rng.gen_range(-0.5..0.5)).collect();
            let base_crow = vec![0u16; width];

            let (mut cur_s, mut crow_s) = (base_cur.clone(), base_crow.clone());
            apply_candidate(
                KernelKind::Scalar,
                &prev,
                &mut cur_s,
                &mut crow_s,
                w_lo,
                w_hi,
                gain,
                delta,
                tag,
            );
            let (mut cur_v, mut crow_v) = (base_cur.clone(), base_crow.clone());
            let kind = if simd_compiled() {
                KernelKind::Simd
            } else {
                KernelKind::Scalar
            };
            apply_candidate(
                kind,
                &prev,
                &mut cur_v,
                &mut crow_v,
                w_lo,
                w_hi,
                gain,
                delta,
                tag,
            );
            for w in 0..width {
                assert_eq!(
                    cur_s[w].to_bits(),
                    cur_v[w].to_bits(),
                    "case {case} w {w}: {} vs {}",
                    cur_s[w],
                    cur_v[w]
                );
            }
            assert_eq!(crow_s, crow_v, "case {case}");
        }
    }

    #[test]
    fn lane_tallies_reflect_row_shape() {
        let prev = vec![1.0; 64];
        let mut cur = vec![5.0; 64];
        let mut crow = vec![0u16; 64];
        let (lanes, tail) = apply_candidate(
            KernelKind::Scalar,
            &prev,
            &mut cur,
            &mut crow,
            0,
            63,
            4,
            0.5,
            1,
        );
        assert_eq!((lanes, tail), (0, 0), "scalar kernel reports no lanes");
        if simd_compiled() {
            let mut cur = vec![5.0; 64];
            let mut crow = vec![0u16; 64];
            // Segment [0, 60] with gain 4: floor [0,4) is sub-lane (tail),
            // dense [4, 60] holds 7 full lanes + 1 tail cell.
            let (lanes, tail) = apply_candidate(
                KernelKind::Simd,
                &prev,
                &mut cur,
                &mut crow,
                0,
                60,
                4,
                0.5,
                1,
            );
            assert_eq!(lanes, 7, "dense lanes");
            assert_eq!(tail, 4 + 1, "floor cells + dense remainder");
        }
    }

    #[test]
    fn delta_row_matches_reference_expression_bitwise() {
        let mut rng = StdRng::seed_from_u64(0xDE17A);
        for width in [1usize, 7, 8, 9, 31, 64, 100] {
            let lambda: Vec<f64> = (0..width).map(|_| rng.gen_range(0.0f64..2.0)).collect();
            let phi: Vec<f64> = (0..width).map(|_| rng.gen_range(0.0f64..2.0)).collect();
            let prices: Vec<f64> = (0..width).map(|_| rng.gen_range(0.0f64..3.0)).collect();
            let (s_price, mem, ew) = (1.37, 10.0, 0.8);
            let mut scalar = vec![0.0; width];
            delta_row(
                KernelKind::Scalar,
                &lambda,
                &phi,
                &prices,
                s_price,
                mem,
                ew,
                &mut scalar,
            );
            for (j, v) in scalar.iter().enumerate() {
                let e = prices[j] * ew;
                let want = s_price * lambda[j] + mem * phi[j] + e;
                assert_eq!(v.to_bits(), want.to_bits(), "width {width} j {j}");
            }
            if simd_compiled() {
                let mut vector = vec![0.0; width];
                delta_row(
                    KernelKind::Simd,
                    &lambda,
                    &phi,
                    &prices,
                    s_price,
                    mem,
                    ew,
                    &mut vector,
                );
                for j in 0..width {
                    assert_eq!(
                        scalar[j].to_bits(),
                        vector[j].to_bits(),
                        "width {width} j {j}"
                    );
                }
            }
        }
    }
}
