//! The shared per-arrival delta grid.
//!
//! Algorithm 2 prices every `(node, slot)` cell of a task's execution
//! window with `Δ_kt = s_ik·λ_kt + r_i·φ_kt + e_ikt`. The straight-line
//! implementation recomputes that value once per vendor, per refinement,
//! per DP row — even though `Δ_kt` depends only on the task and the
//! current duals, not on the vendor's start offset or the work
//! quantization. [`DeltaGrid`] computes the whole `compatible × window`
//! matrix exactly once per arrival over the *widest* window
//! `[a_i, d_i]`; each vendor's DP then slices it by start offset.
//!
//! The grid also keeps per-column minima, which power the admission
//! pruning of the scheduler: any feasible schedule needs at least
//! `m = ⌈M_i / max_k s_ik⌉` placements in distinct usable slots, each
//! costing at least its column minimum, so the sum of the `m` cheapest
//! column minima lower-bounds `dp_cost` — and therefore upper-bounds the
//! admission surplus `F(il) ≤ b_i − q_in − dp_cost` without running the
//! DP ([`DeltaGrid::cost_lower_bound`]). A second, *dual-footprint* bound
//! targets the warm-cluster regime where Eq. (10)'s max-dual terms (not
//! `dp_cost`) drive rejection: `F(il)` charges `max λ` on the whole
//! compute footprint and `max φ` on `r_i · |l|`, both of which dominate
//! `min λ · M_i/unit + min φ · r_i · m + m · min e` over the window's
//! usable cells. The suffix minima of λ, φ, and e are precomputed per
//! build, so each vendor's bound costs O(1) beyond the column-minima sum.
//!
//! Beyond the raw cells, the build also precomputes one **Pareto front
//! per column**: the compatible nodes not dominated in that slot by an
//! earlier-indexed node with `delta ≤` and `rate ≥`. The DP row sweep
//! iterates only these candidates ([`DeltaGrid::col_front`]), so the
//! dominance filter runs once per arrival instead of once per DP row per
//! vendor per refinement. Raw-rate dominance is quantization-free: floor
//! division is monotone, so `rate_b ≥ rate_a` implies `⌊rate_b/u⌋ ≥
//! ⌊rate_a/u⌋` for every work unit `u` — a front computed on raw rates is
//! valid for every refinement the DP tries.
//!
//! **Bit-equivalence.** Each cell is computed with the exact expression
//! (and operation order) of the reference DP, so the optimized pipeline's
//! dp costs, schedules, and admissions are bit-identical to the
//! reference's (proven by `tests/pipeline_equivalence.rs`). The column
//! fronts preserve that: they drop only candidates whose quantized
//! `(gain, delta)` is dominated, and under the DP's strict-`<` tie-break a
//! dominated candidate can never win a cell, so pruning it changes no
//! value and no choice tag (the same argument the per-row front used).

use crate::dp::DpContext;
use crate::kernel::{self, KernelKind};
use pdftsp_types::{NodeId, Slot, Task};

/// Multiplier that makes floating-point lower bounds conservative.
///
/// The column-minima sums are accumulated in a different order than the
/// DP accumulates the same cells, so the two can differ by a few ulps
/// (~`n·ε ≈ 1e-13` relative for realistic window lengths). Scaling the
/// bound down by `1e-12` relative guarantees it never exceeds the true
/// infimum, so pruning and early DP termination can never flip a decision
/// that the exact arithmetic would have made differently. All deltas are
/// non-negative (duals and prices are), so scaling toward zero is always
/// the safe direction.
pub(crate) const LB_SLACK: f64 = 1.0 - 1e-12;

/// Per-arrival `(compatible node) × (window slot)` cost matrix.
///
/// Built once per arriving task via [`DeltaGrid::build`]; all internal
/// vectors are retained across calls so steady-state rebuilds allocate
/// nothing.
#[derive(Debug, Default)]
pub struct DeltaGrid {
    /// First slot covered (column 0).
    base: Slot,
    /// Last slot covered, inclusive (`min(d_i, horizon − 1)`).
    deadline: Slot,
    /// `deadline − base + 1`, or 0 when the window is empty.
    width: usize,
    /// Compatible nodes (positive rate, adapter fits), ascending.
    compatible: Vec<NodeId>,
    /// `s_ik` per compatible node (raw samples/slot).
    rates: Vec<u64>,
    /// Slowest / fastest compatible rate (0 when none compatible).
    min_rate: u64,
    max_rate: u64,
    /// Node-major deltas: `deltas[c * width + j]` prices compatible node
    /// `c` at slot `base + j`; `+∞` where the capacity mask refuses.
    deltas: Vec<f64>,
    /// Per-column minimum over all compatible nodes (`+∞` if none usable).
    col_min: Vec<f64>,
    /// `lam_suf[j]` = min `λ_kt` over usable cells with column ≥ `j`
    /// (`+∞` when no such cell). Powers the dual-footprint bound.
    lam_suf: Vec<f64>,
    /// Suffix minima of `φ_kt` over usable cells.
    phi_suf: Vec<f64>,
    /// Suffix minima of the per-cell energy cost `e_ikt`.
    e_suf: Vec<f64>,
    /// CSR offsets into the front arrays: column `j`'s candidates live at
    /// `front_idx[j]..front_idx[j+1]` (length `width + 1`).
    front_idx: Vec<u32>,
    /// Compatible-node index of each front candidate, ascending per column.
    front_node: Vec<u32>,
    /// Raw rate `s_ik` of each front candidate (dominance key).
    front_rate: Vec<u64>,
    /// Delta of each front candidate (same bits as its grid cell).
    front_delta: Vec<f64>,
    /// Samples per compute pricing unit, captured at build time (the
    /// admission bound prices the task's work term in these units).
    compute_unit: f64,
    /// Row kernel used for the delta computation (bit-identical either
    /// way; see [`crate::kernel::delta_row`]).
    kernel: KernelKind,
    /// Scratch for the ledger's batched fits check.
    fits_buf: Vec<bool>,
}

/// One column's Pareto-front candidates, parallel slices.
#[derive(Debug, Clone, Copy)]
pub struct ColumnFront<'a> {
    /// Compatible-node indices (`c`, not node ids), ascending.
    pub nodes: &'a [u32],
    /// The candidates' deltas (bit-identical to the grid cells).
    pub deltas: &'a [f64],
}

impl DeltaGrid {
    /// (Re)builds the grid for `task` with column 0 at `base`.
    ///
    /// `base` must not exceed any start offset later sliced from the grid
    /// (the scheduler passes `task.arrival`; every vendor start is
    /// `arrival + delay ≥ arrival`).
    pub fn build(&mut self, ctx: &DpContext<'_>, task: &Task, base: Slot) {
        if let Some(tel) = ctx.telemetry {
            tel.counters.bump(&tel.counters.grid_builds, 1);
        }
        let scenario = ctx.scenario;
        self.compatible.clear();
        self.rates.clear();
        self.deltas.clear();
        self.col_min.clear();
        self.lam_suf.clear();
        self.phi_suf.clear();
        self.e_suf.clear();
        self.front_idx.clear();
        self.front_node.clear();
        self.front_rate.clear();
        self.front_delta.clear();
        self.compute_unit = ctx.compute_unit;
        self.base = base;
        self.deadline = task.deadline.min(scenario.horizon.saturating_sub(1));
        self.min_rate = 0;
        self.max_rate = 0;
        if base > self.deadline {
            self.width = 0;
            return;
        }
        self.width = self.deadline - base + 1;
        for k in 0..scenario.nodes.len() {
            if task.rate(k) > 0 && task.memory_gb <= scenario.adapter_memory(k) {
                self.compatible.push(k);
                self.rates.push(task.rate(k));
            }
        }
        if self.compatible.is_empty() {
            return;
        }
        self.min_rate = *self.rates.iter().min().expect("non-empty");
        self.max_rate = *self.rates.iter().max().expect("non-empty");
        self.deltas
            .resize(self.compatible.len() * self.width, f64::INFINITY);
        self.col_min.resize(self.width, f64::INFINITY);
        self.lam_suf.resize(self.width, f64::INFINITY);
        self.phi_suf.resize(self.width, f64::INFINITY);
        self.e_suf.resize(self.width, f64::INFINITY);
        for c in 0..self.compatible.len() {
            let k = self.compatible[c];
            let masked = if let Some(ledger) = ctx.ledger {
                ledger.fits_span(task, k, base, self.deadline, &mut self.fits_buf);
                true
            } else {
                false
            };
            let lambda = &ctx.duals.lambda_row(k)[base..=self.deadline];
            let phi = &ctx.duals.phi_row(k)[base..=self.deadline];
            let prices = &scenario.cost.prices_row(k)[base..=self.deadline];
            // Same expression — and the same operation order — as the
            // reference DP's per-cell delta, so values are bit-identical.
            let s_price = task.rate(k) as f64 / ctx.compute_unit;
            let row = &mut self.deltas[c * self.width..(c + 1) * self.width];
            kernel::delta_row(
                self.kernel,
                lambda,
                phi,
                prices,
                s_price,
                task.memory_gb,
                task.energy_weight,
                row,
            );
            for j in 0..self.width {
                if masked && !self.fits_buf[j] {
                    row[j] = f64::INFINITY; // the cell cannot host the task
                    continue;
                }
                let delta = row[j];
                let e = prices[j] * task.energy_weight;
                if delta < self.col_min[j] {
                    self.col_min[j] = delta;
                }
                if lambda[j] < self.lam_suf[j] {
                    self.lam_suf[j] = lambda[j];
                }
                if phi[j] < self.phi_suf[j] {
                    self.phi_suf[j] = phi[j];
                }
                if e < self.e_suf[j] {
                    self.e_suf[j] = e;
                }
            }
        }
        // Per-column Pareto fronts over raw rates (see the module docs for
        // why raw-rate dominance is safe under every work quantization).
        // `dominated` is a branchless fold: fronts are a handful of
        // entries, so predicated compares beat a branchy early-out.
        self.front_idx.push(0);
        for j in 0..self.width {
            let col_start = *self.front_idx.last().expect("pushed above") as usize;
            for c in 0..self.compatible.len() {
                let delta = self.deltas[c * self.width + j];
                if !delta.is_finite() {
                    continue; // capacity-masked cell
                }
                let rate = self.rates[c];
                let mut dominated = false;
                for i in col_start..self.front_node.len() {
                    dominated |= self.front_delta[i] <= delta && self.front_rate[i] >= rate;
                }
                if !dominated {
                    self.front_node.push(c as u32);
                    self.front_rate.push(rate);
                    self.front_delta.push(delta);
                }
            }
            self.front_idx.push(self.front_node.len() as u32);
        }
        // Column minima → suffix minima (right-to-left), so every start
        // offset reads its window's cheapest λ/φ/e cell in O(1).
        for j in (0..self.width.saturating_sub(1)).rev() {
            self.lam_suf[j] = self.lam_suf[j].min(self.lam_suf[j + 1]);
            self.phi_suf[j] = self.phi_suf[j].min(self.phi_suf[j + 1]);
            self.e_suf[j] = self.e_suf[j].min(self.e_suf[j + 1]);
        }
        if let Some(tel) = ctx.telemetry {
            tel.counters
                .bump(&tel.counters.grid_cells, self.deltas.len() as u64);
        }
    }

    /// Slot of column 0.
    #[must_use]
    pub fn base(&self) -> Slot {
        self.base
    }

    /// Last covered slot, inclusive.
    #[must_use]
    pub fn deadline(&self) -> Slot {
        self.deadline
    }

    /// Number of columns (0 when the window is empty).
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// True when no schedule can exist at all: empty window or no
    /// compatible node (every DP over this grid returns `None`).
    #[must_use]
    pub fn is_unusable(&self) -> bool {
        self.width == 0 || self.compatible.is_empty()
    }

    /// Compatible nodes, ascending.
    #[must_use]
    pub fn compatible(&self) -> &[NodeId] {
        &self.compatible
    }

    /// `s_ik` per compatible node.
    #[must_use]
    pub fn rates(&self) -> &[u64] {
        &self.rates
    }

    /// Slowest compatible rate.
    #[must_use]
    pub fn min_rate(&self) -> u64 {
        self.min_rate
    }

    /// Fastest compatible rate.
    #[must_use]
    pub fn max_rate(&self) -> u64 {
        self.max_rate
    }

    /// The delta row of compatible node `c` (length = width).
    #[must_use]
    pub fn node_row(&self, c: usize) -> &[f64] {
        &self.deltas[c * self.width..(c + 1) * self.width]
    }

    /// Per-column minima (length = width).
    #[must_use]
    pub fn col_min(&self) -> &[f64] {
        &self.col_min
    }

    /// Column `j`'s precomputed Pareto-front candidates (ascending node
    /// index). Valid for any work quantization the DP tries.
    #[must_use]
    pub fn col_front(&self, j: usize) -> ColumnFront<'_> {
        let lo = self.front_idx[j] as usize;
        let hi = self.front_idx[j + 1] as usize;
        ColumnFront {
            nodes: &self.front_node[lo..hi],
            deltas: &self.front_delta[lo..hi],
        }
    }

    /// Selects the delta-row kernel for subsequent [`DeltaGrid::build`]
    /// calls (both kernels produce bit-identical cells).
    pub fn set_kernel(&mut self, kernel: KernelKind) {
        self.kernel = kernel;
    }

    /// Conservative lower bound on the admission cost any schedule in
    /// `[start, deadline]` charges against the bid in Eq. (10) — so
    /// `F(il) ≤ b_i − q_in − lb` holds for every candidate this window can
    /// produce — or `None` when feasibility can be ruled out without
    /// running the DP.
    ///
    /// `None` is sound: it is returned only under conditions that force
    /// the reference DP to return `None` too (window shorter than the
    /// fastest node needs, or fewer usable columns than the minimum
    /// placement count `m = ⌈M_i / max_k s_ik⌉`). The bound is the larger
    /// of two valid lower bounds, scaled by [`LB_SLACK`]:
    ///
    /// 1. **dp-cost**: the sum of the `m` cheapest finite column minima
    ///    (`F(il) ≤ b_i − q_in − dp_cost` because the max-dual charges of
    ///    Eq. (10) dominate the per-slot dual prices inside `dp_cost`);
    /// 2. **dual-footprint**: `m·min e + min λ·(M_i/unit) + min φ·r_i·m`
    ///    over the window's usable cells — sound because any schedule has
    ///    `|l| ≥ m` placements, delivers `Σ s ≥ M_i`, and pays
    ///    `max λ ≥ min λ`, `max φ ≥ min φ`, `Σ e ≥ m·min e`. On a warm
    ///    cluster this term is what actually proves `F(il) ≤ 0`: the
    ///    rejection is driven by the dual footprint, which the dp-cost
    ///    bound under-counts when rates are heterogeneous.
    #[must_use]
    pub fn cost_lower_bound(
        &self,
        task: &Task,
        start: Slot,
        scratch: &mut Vec<f64>,
    ) -> Option<f64> {
        if self.is_unusable() || start > self.deadline || start < self.base {
            return None;
        }
        let window = self.deadline - start + 1;
        if self.max_rate.saturating_mul(window as u64) < task.work {
            return None; // even running flat-out cannot finish
        }
        let m = task.work.div_ceil(self.max_rate) as usize;
        scratch.clear();
        scratch.extend(
            self.col_min[start - self.base..]
                .iter()
                .copied()
                .filter(|d| d.is_finite()),
        );
        if scratch.len() < m {
            return None; // fewer usable slots than placements needed
        }
        if m == 0 {
            return Some(0.0);
        }
        if m < scratch.len() {
            scratch.select_nth_unstable_by(m - 1, |a, b| a.total_cmp(b));
        }
        let delta_lb: f64 = scratch[..m].iter().sum();
        // The suffix minima are finite here: `scratch` being non-empty
        // proves at least one usable cell exists at column ≥ start.
        let j = start - self.base;
        let m_f = m as f64;
        let dual_lb = m_f * self.e_suf[j]
            + self.lam_suf[j] * (task.work as f64 / self.compute_unit)
            + self.phi_suf[j] * (task.memory_gb * m_f);
        Some(delta_lb.max(dual_lb) * LB_SLACK)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duals::DualState;
    use pdftsp_cluster::CapacityLedger;
    use pdftsp_types::{
        CostGrid, GpuModel, NodeSpec, Scenario, Schedule, TaskBuilder, VendorQuote,
    };

    fn scenario(prices: Vec<f64>, nodes: usize, horizon: usize) -> Scenario {
        Scenario {
            horizon,
            base_model_gb: 2.0,
            nodes: (0..nodes)
                .map(|k| NodeSpec::new(k, GpuModel::A100_80, 4000))
                .collect(),
            tasks: vec![],
            quotes: vec![],
            cost: CostGrid::from_vec(nodes, horizon, prices).unwrap(),
        }
    }

    fn task(work: u64, rates: Vec<u64>, deadline: usize) -> pdftsp_types::Task {
        TaskBuilder::new(0, 0, deadline)
            .dataset(work)
            .memory_gb(10.0)
            .bid(100.0)
            .rates(rates)
            .build()
            .unwrap()
    }

    #[test]
    fn grid_cells_match_reference_delta_expression() {
        let sc = scenario(vec![1.0, 2.0, 3.0, 4.0, 0.5, 1.5, 2.5, 3.5], 2, 4);
        let t = task(2000, vec![1000, 700], 3);
        let mut duals = DualState::new(&sc, 1000.0);
        let dummy = task(2000, vec![2000, 2000], 3);
        duals.update(
            &dummy,
            &Schedule::new(0, VendorQuote::none(), vec![(0, 1), (1, 2)]),
            1.3,
            2.0,
            2.0,
            1000.0,
        );
        let ctx = DpContext {
            scenario: &sc,
            duals: &duals,
            ledger: None,
            compute_unit: 1000.0,
            telemetry: None,
        };
        let mut grid = DeltaGrid::default();
        grid.build(&ctx, &t, 0);
        assert_eq!(grid.compatible(), &[0, 1]);
        assert_eq!(grid.width(), 4);
        for (c, &k) in grid.compatible().iter().enumerate() {
            for tt in 0..4 {
                let want = t.rate(k) as f64 / 1000.0 * duals.lambda(k, tt)
                    + t.memory_gb * duals.phi(k, tt)
                    + sc.cost.e(&t, k, tt);
                assert_eq!(grid.node_row(c)[tt], want, "node {k} slot {tt}");
            }
        }
        for tt in 0..4 {
            let want = grid.node_row(0)[tt].min(grid.node_row(1)[tt]);
            assert_eq!(grid.col_min()[tt], want);
        }
    }

    #[test]
    fn capacity_mask_leaves_infinite_cells() {
        let sc = scenario(vec![0.0; 6], 1, 6);
        let t = task(2000, vec![1000], 5);
        let duals = DualState::new(&sc, 1000.0);
        let mut ledger = CapacityLedger::new(&sc);
        let fat = task(4000, vec![4000], 5);
        ledger
            .commit(
                &fat,
                &Schedule::new(0, VendorQuote::none(), vec![(0, 0), (0, 3)]),
            )
            .unwrap();
        let ctx = DpContext {
            scenario: &sc,
            duals: &duals,
            ledger: Some(&ledger),
            compute_unit: 1000.0,
            telemetry: None,
        };
        let mut grid = DeltaGrid::default();
        grid.build(&ctx, &t, 0);
        let row = grid.node_row(0);
        assert!(row[0].is_infinite() && row[3].is_infinite());
        assert!(row[1].is_finite() && row[2].is_finite());
        assert!(grid.col_min()[0].is_infinite());
        assert!(grid.col_min()[1].is_finite());
    }

    #[test]
    fn unusable_grid_when_no_compatible_node_or_empty_window() {
        let sc = scenario(vec![0.0; 4], 1, 4);
        let duals = DualState::new(&sc, 1000.0);
        let ctx = DpContext {
            scenario: &sc,
            duals: &duals,
            ledger: None,
            compute_unit: 1000.0,
            telemetry: None,
        };
        let mut grid = DeltaGrid::default();
        // Zero rate → no compatible node.
        let t = task(2000, vec![0], 3);
        grid.build(&ctx, &t, 0);
        assert!(grid.is_unusable());
        // Base beyond the deadline → empty window.
        let t2 = task(2000, vec![1000], 1);
        grid.build(&ctx, &t2, 2);
        assert!(grid.is_unusable());
    }

    #[test]
    fn rebuild_reuses_buffers_and_resets_state() {
        let sc = scenario(vec![1.0; 12], 2, 6);
        let duals = DualState::new(&sc, 1000.0);
        let ctx = DpContext {
            scenario: &sc,
            duals: &duals,
            ledger: None,
            compute_unit: 1000.0,
            telemetry: None,
        };
        let mut grid = DeltaGrid::default();
        let wide = task(2000, vec![1000, 500], 5);
        grid.build(&ctx, &wide, 0);
        assert_eq!(grid.width(), 6);
        assert_eq!(grid.compatible().len(), 2);
        // A narrower task must not see stale columns or nodes.
        let narrow = task(1000, vec![0, 800], 2);
        grid.build(&ctx, &narrow, 0);
        assert_eq!(grid.width(), 3);
        assert_eq!(grid.compatible(), &[1]);
        assert_eq!(grid.node_row(0).len(), 3);
        assert_eq!(grid.min_rate(), 800);
        assert_eq!(grid.max_rate(), 800);
    }

    /// On a warm cluster with heterogeneous rates the dp-cost bound sees
    /// only the slow node's cheap deltas while `F(il)` charges `max λ` on
    /// the full work — the dual-footprint term must close that gap, and
    /// must still never exceed the true footprint of the DP's optimum.
    #[test]
    fn dual_footprint_bound_dominates_under_warm_duals() {
        use crate::dp::find_schedule;
        let sc = scenario(vec![0.0; 16], 2, 8); // zero prices → e = 0
        let t = task(4000, vec![1000, 4000], 7);
        let mut duals = DualState::new(&sc, 1000.0);
        // Warm every (node, slot) cell so the window's minimum λ and φ
        // are strictly positive.
        for k in 0..2 {
            for tt in 0..8 {
                let dummy = task(1000, vec![1000, 1000], 7);
                let s = Schedule::new(0, VendorQuote::none(), vec![(k, tt)]);
                duals.update(&dummy, &s, 1.0, 2.0, 2.0, 1000.0);
            }
        }
        let ctx = DpContext {
            scenario: &sc,
            duals: &duals,
            ledger: None,
            compute_unit: 1000.0,
            telemetry: None,
        };
        let mut grid = DeltaGrid::default();
        grid.build(&ctx, &t, 0);
        let mut scratch = Vec::new();
        let lb = grid.cost_lower_bound(&t, 0, &mut scratch).unwrap();
        // m = ⌈4000/4000⌉ = 1, so the dp-cost bound is a single cheap
        // slow-node delta; the dual term charges min λ on all 4 work units.
        let delta_only = grid.col_min().iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            lb > delta_only,
            "dual footprint must strengthen the bound: {lb} vs {delta_only}"
        );
        // Soundness: never above the admission footprint of the optimum.
        let r = find_schedule(&ctx, &t, 0).unwrap();
        let cu: u64 = r.placements.iter().map(|&(k, _)| t.rate(k)).sum();
        let footprint = r.energy
            + duals.max_lambda(&r.placements) * (cu as f64 / 1000.0)
            + duals.max_phi(&r.placements) * t.memory_gb * r.placements.len() as f64;
        assert!(lb <= footprint, "lb {lb} > footprint {footprint}");
    }

    #[test]
    fn cost_lower_bound_is_sound_and_detects_infeasibility() {
        let sc = scenario(vec![3.0, 1.0, 2.0, 4.0, 2.0, 1.0], 1, 6);
        let t = task(3000, vec![1000], 5);
        let duals = DualState::new(&sc, 1000.0);
        let ctx = DpContext {
            scenario: &sc,
            duals: &duals,
            ledger: None,
            compute_unit: 1000.0,
            telemetry: None,
        };
        let mut grid = DeltaGrid::default();
        grid.build(&ctx, &t, 0);
        let mut scratch = Vec::new();
        // Needs 3 placements; the 3 cheapest columns cost 1 + 1 + 2 = 4.
        let lb = grid.cost_lower_bound(&t, 0, &mut scratch).unwrap();
        assert!(lb <= 4.0 && lb > 4.0 * 0.999, "lb {lb}");
        // Starting at slot 4 leaves a 2-slot window for 3 slots of work.
        assert!(grid.cost_lower_bound(&t, 4, &mut scratch).is_none());
        // Start past the deadline.
        assert!(grid.cost_lower_bound(&t, 6, &mut scratch).is_none());
    }
}
