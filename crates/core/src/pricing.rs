//! The payment rule of Eq. (14).
//!
//! A winning bid pays the vendor's price plus the *marginal* resource
//! prices — the maxima of the pre-update duals `λ^{(i-1)}`, `φ^{(i-1)}`
//! over the schedule's cells — times its total resource consumption:
//!
//! ```text
//! p_i = Σ_n z_in q_in + max λ · Σ s_ik x_ikt + max φ · Σ r_i x_ikt
//! ```
//!
//! The payment does not depend on the bid itself (only on consumed
//! resources), which is what makes the auction truthful (Theorem 3).

use crate::config::PricingRule;
use pdftsp_types::{Schedule, Task};

/// Computes the payment `p_i` for an admitted task.
///
/// `max_lambda`/`max_phi` must be the maxima over the schedule's cells of
/// the duals **before** the Eq. (7)–(8) update for this task; `energy` is
/// the schedule's `Σ e_ikt` (used only by [`PricingRule::WithEnergy`]).
#[must_use]
pub fn payment(
    rule: PricingRule,
    task: &Task,
    schedule: &Schedule,
    max_lambda: f64,
    max_phi: f64,
    compute_unit: f64,
    energy: f64,
) -> f64 {
    let compute_units = schedule.total_compute(task) as f64 / compute_unit;
    let memory = schedule.total_memory(task);
    let base = schedule.vendor.price + max_lambda * compute_units + max_phi * memory;
    match rule {
        PricingRule::PaperEq14 => base,
        PricingRule::WithEnergy => base + energy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdftsp_types::{TaskBuilder, VendorQuote};

    fn setup() -> (Task, Schedule) {
        let t = TaskBuilder::new(0, 0, 9)
            .dataset(2000)
            .memory_gb(5.0)
            .bid(50.0)
            .rates(vec![1000])
            .build()
            .unwrap();
        let s = Schedule::new(
            0,
            VendorQuote {
                vendor: 1,
                price: 2.0,
                delay: 1,
            },
            vec![(0, 2), (0, 3)],
        );
        (t, s)
    }

    #[test]
    fn eq14_payment_matches_hand_calculation() {
        let (t, s) = setup();
        // compute = 2000 samples = 2 units; memory = 5 × 2 slots = 10.
        let p = payment(PricingRule::PaperEq14, &t, &s, 3.0, 0.5, 1000.0, 4.0);
        // 2 (vendor) + 3·2 + 0.5·10 = 13.
        assert!((p - 13.0).abs() < 1e-12);
    }

    #[test]
    fn with_energy_adds_operational_cost() {
        let (t, s) = setup();
        let p14 = payment(PricingRule::PaperEq14, &t, &s, 3.0, 0.5, 1000.0, 4.0);
        let pe = payment(PricingRule::WithEnergy, &t, &s, 3.0, 0.5, 1000.0, 4.0);
        assert!((pe - p14 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_duals_charge_only_the_vendor() {
        let (t, s) = setup();
        let p = payment(PricingRule::PaperEq14, &t, &s, 0.0, 0.0, 1000.0, 4.0);
        assert!((p - 2.0).abs() < 1e-12);
    }

    #[test]
    fn payment_is_independent_of_the_bid() {
        let (t, s) = setup();
        let p1 = payment(PricingRule::PaperEq14, &t, &s, 1.0, 1.0, 1000.0, 0.0);
        let cheap = t.with_declared_bid(1.0);
        let p2 = payment(PricingRule::PaperEq14, &cheap, &s, 1.0, 1.0, 1000.0, 0.0);
        assert_eq!(p1, p2);
    }
}
