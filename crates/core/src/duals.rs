//! Dual-price state: `λ_kt` (compute) and `φ_kt` (memory).
//!
//! The duals act as posted resource prices. They start at zero and grow
//! multiplicatively with committed load per Eqs. (7)–(8):
//!
//! ```text
//! λ_kt ← λ_kt (1 + s_kt(il)/C_kp)        + α · b̄_il · s_kt(il)/C_kp
//! φ_kt ← φ_kt (1 + r_kt(il)/(C_km−r_b))  + β · b̄_il · r_kt(il)/(C_km−r_b)
//! ```
//!
//! Compute quantities are expressed in the pricing unit of
//! [`crate::config::PdftspConfig::compute_unit`] so `b̄_il` is O(1)
//! (Lemma 2's unit-scaling assumption).

use crate::config::{DualRule, PreheatSpec};
use pdftsp_telemetry::{Event, Telemetry};
use pdftsp_types::{NodeId, Scenario, Schedule, Slot, Task};

/// Dense `K × T` grids of dual prices plus the capacity denominators.
#[derive(Debug, Clone)]
pub struct DualState {
    nodes: usize,
    horizon: usize,
    lambda: Vec<f64>,
    phi: Vec<f64>,
    /// `C_kp` per node, in pricing units.
    compute_cap_units: Vec<f64>,
    /// `C_km − r_b` per node, GB.
    adapter_cap: Vec<f64>,
    /// Accumulated `Σ_i μ_i` (for dual-objective instrumentation).
    mu_sum: f64,
}

impl DualState {
    /// Zero-initialized duals for `scenario` (Algorithm 1 line 1).
    #[must_use]
    pub fn new(scenario: &Scenario, compute_unit: f64) -> Self {
        let nodes = scenario.nodes.len();
        let horizon = scenario.horizon;
        DualState {
            nodes,
            horizon,
            lambda: vec![0.0; nodes * horizon],
            phi: vec![0.0; nodes * horizon],
            compute_cap_units: scenario
                .nodes
                .iter()
                .map(|n| n.compute_capacity as f64 / compute_unit)
                .collect(),
            adapter_cap: (0..nodes).map(|k| scenario.adapter_memory(k)).collect(),
            mu_sum: 0.0,
        }
    }

    #[inline]
    fn idx(&self, k: NodeId, t: Slot) -> usize {
        debug_assert!(k < self.nodes && t < self.horizon);
        k * self.horizon + t
    }

    /// Number of nodes (`K`) the price grids cover.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of slots (`T`) the price grids cover.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Compute price `λ_kt`.
    #[must_use]
    pub fn lambda(&self, k: NodeId, t: Slot) -> f64 {
        self.lambda[self.idx(k, t)]
    }

    /// Memory price `φ_kt`.
    #[must_use]
    pub fn phi(&self, k: NodeId, t: Slot) -> f64 {
        self.phi[self.idx(k, t)]
    }

    /// The full `λ_k·` price row of node `k` (length = horizon).
    ///
    /// Grid builders read whole rows so the `k × horizon` indexing is
    /// hoisted out of their slot loops.
    #[must_use]
    pub fn lambda_row(&self, k: NodeId) -> &[f64] {
        &self.lambda[k * self.horizon..(k + 1) * self.horizon]
    }

    /// The full `φ_k·` price row of node `k` (length = horizon).
    #[must_use]
    pub fn phi_row(&self, k: NodeId) -> &[f64] {
        &self.phi[k * self.horizon..(k + 1) * self.horizon]
    }

    /// `max_{(k,t)∈l} λ_kt` over a schedule's placements (0 for empty).
    #[must_use]
    pub fn max_lambda(&self, placements: &[(NodeId, Slot)]) -> f64 {
        placements
            .iter()
            .map(|&(k, t)| self.lambda(k, t))
            .fold(0.0, f64::max)
    }

    /// `max_{(k,t)∈l} φ_kt` over a schedule's placements (0 for empty).
    #[must_use]
    pub fn max_phi(&self, placements: &[(NodeId, Slot)]) -> f64 {
        placements
            .iter()
            .map(|&(k, t)| self.phi(k, t))
            .fold(0.0, f64::max)
    }

    /// Applies the Eq. (7)–(8) updates for an admitted schedule.
    ///
    /// `s_units(k)` must give `s_kt(il)` in pricing units; `b_bar` is the
    /// welfare density `b̄_il` (also in pricing units).
    pub fn update(
        &mut self,
        task: &Task,
        schedule: &Schedule,
        b_bar: f64,
        alpha: f64,
        beta: f64,
        compute_unit: f64,
    ) {
        self.update_with_rule(
            task,
            schedule,
            b_bar,
            alpha,
            beta,
            compute_unit,
            DualRule::Multiplicative,
        );
    }

    /// [`DualState::update`] with an explicit functional form (ablations).
    #[allow(clippy::too_many_arguments)]
    pub fn update_with_rule(
        &mut self,
        task: &Task,
        schedule: &Schedule,
        b_bar: f64,
        alpha: f64,
        beta: f64,
        compute_unit: f64,
        rule: DualRule,
    ) {
        self.update_logged(task, schedule, b_bar, alpha, beta, compute_unit, rule, None);
    }

    /// [`DualState::update_with_rule`] plus observability: emits one
    /// [`Event::DualUpdate`] (and one `dual_updates` count) per `(k, t)`
    /// placement touched. With `DualRule::Off` nothing is updated and
    /// nothing is emitted.
    #[allow(clippy::too_many_arguments)]
    pub fn update_logged(
        &mut self,
        task: &Task,
        schedule: &Schedule,
        b_bar: f64,
        alpha: f64,
        beta: f64,
        compute_unit: f64,
        rule: DualRule,
        telemetry: Option<&Telemetry>,
    ) {
        if rule == DualRule::Off {
            return;
        }
        for &(k, t) in &schedule.placements {
            let i = self.idx(k, t);
            let s = task.rate(k) as f64 / compute_unit;
            let cp = self.compute_cap_units[k];
            if cp > 0.0 {
                let frac = s / cp;
                let compounded = match rule {
                    DualRule::Multiplicative => self.lambda[i] * (1.0 + frac),
                    DualRule::Linear => self.lambda[i],
                    DualRule::Off => unreachable!(),
                };
                self.lambda[i] = compounded + alpha * b_bar * frac;
            }
            let cm = self.adapter_cap[k];
            if cm > 0.0 {
                let frac = task.memory_gb / cm;
                let compounded = match rule {
                    DualRule::Multiplicative => self.phi[i] * (1.0 + frac),
                    DualRule::Linear => self.phi[i],
                    DualRule::Off => unreachable!(),
                };
                self.phi[i] = compounded + beta * b_bar * frac;
            }
            if let Some(tel) = telemetry {
                let (lambda, phi) = (self.lambda[i], self.phi[i]);
                tel.emit(|| Event::DualUpdate {
                    task: task.id,
                    node: k,
                    slot: t,
                    lambda,
                    phi,
                });
            }
        }
        if let Some(tel) = telemetry {
            // One bump for the whole schedule keeps the hot path at a
            // single atomic per admission rather than one per placement.
            tel.counters
                .bump(&tel.counters.dual_updates, schedule.placements.len() as u64);
        }
    }

    /// Seeds the price grids from a forecast of arrival intensity over a
    /// lookahead window (prediction-driven pre-heating; see
    /// [`PreheatSpec`]).
    ///
    /// For every slot `t` the forecast aggregates the work, bids, and
    /// memory of tasks *arriving* in `[t, t + lookahead)`. Where the
    /// forecast work exceeds the window's compute capacity, `λ_kt` is
    /// seeded at `gain · (forecast bid density) · (overload − 1)` on
    /// every node; `φ_kt` analogously from the memory forecast. Slots
    /// the forecast calls quiet keep Algorithm 1's zero start, so the
    /// base analysis is untouched off-burst. Seeds only ever *raise* a
    /// price, and the whole computation is a pure function of the
    /// scenario — deterministic across shard layouts and worker counts.
    pub fn preheat(&mut self, scenario: &Scenario, compute_unit: f64, spec: &PreheatSpec) {
        let lookahead = spec.lookahead.max(1).min(self.horizon);
        if spec.gain <= 0.0 || self.horizon == 0 {
            return;
        }
        // Per-arrival-slot aggregates, in pricing units.
        let mut work = vec![0.0f64; self.horizon];
        let mut bids = vec![0.0f64; self.horizon];
        let mut mem = vec![0.0f64; self.horizon];
        for task in &scenario.tasks {
            if task.arrival >= self.horizon {
                continue;
            }
            work[task.arrival] += task.work as f64 / compute_unit;
            bids[task.arrival] += task.bid;
            mem[task.arrival] += task.memory_gb;
        }
        let cap_compute: f64 = self.compute_cap_units.iter().sum();
        let cap_memory: f64 = self.adapter_cap.iter().sum();
        for t in 0..self.horizon {
            let end = (t + lookahead).min(self.horizon);
            let window = (end - t) as f64;
            let (mut w, mut b, mut m) = (0.0, 0.0, 0.0);
            for s in t..end {
                w += work[s];
                b += bids[s];
                m += mem[s];
            }
            let lambda_seed = if w > 0.0 && cap_compute > 0.0 {
                let overload = w / (cap_compute * window);
                spec.gain * (b / w) * (overload - 1.0).max(0.0)
            } else {
                0.0
            };
            let phi_seed = if m > 0.0 && cap_memory > 0.0 {
                let overload = m / (cap_memory * window);
                spec.gain * (b / m) * (overload - 1.0).max(0.0)
            } else {
                0.0
            };
            if lambda_seed <= 0.0 && phi_seed <= 0.0 {
                continue;
            }
            for k in 0..self.nodes {
                let i = k * self.horizon + t;
                self.lambda[i] = self.lambda[i].max(lambda_seed);
                self.phi[i] = self.phi[i].max(phi_seed);
            }
        }
    }

    /// Accumulates `μ_i` (Eq. 11) for dual-objective instrumentation.
    pub fn add_mu(&mut self, mu: f64) {
        debug_assert!(mu >= 0.0);
        self.mu_sum += mu;
    }

    /// The dual objective `D1` of Eq. (6):
    /// `Σ_i μ_i + Σ_kt C_kp λ_kt + Σ_kt (C_km − r_b) φ_kt`.
    ///
    /// By weak duality this upper-bounds the offline optimum of the
    /// (unit-scaled) schedule-selection problem; the competitive-ratio
    /// experiment logs it alongside the primal welfare.
    #[must_use]
    pub fn dual_objective(&self) -> f64 {
        let mut total = self.mu_sum;
        for k in 0..self.nodes {
            for t in 0..self.horizon {
                let i = k * self.horizon + t;
                total += self.compute_cap_units[k] * self.lambda[i];
                total += self.adapter_cap[k] * self.phi[i];
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdftsp_types::{CostGrid, GpuModel, NodeSpec, TaskBuilder, VendorQuote};

    fn scenario() -> Scenario {
        Scenario {
            horizon: 4,
            base_model_gb: 2.0,
            nodes: vec![NodeSpec::new(0, GpuModel::A100_80, 4000)],
            tasks: vec![],
            quotes: vec![],
            cost: CostGrid::flat(1, 4, 0.0),
        }
    }

    fn task() -> Task {
        TaskBuilder::new(0, 0, 3)
            .dataset(2000)
            .memory_gb(39.0)
            .bid(10.0)
            .rates(vec![2000])
            .build()
            .unwrap()
    }

    #[test]
    fn duals_start_at_zero() {
        let d = DualState::new(&scenario(), 1000.0);
        assert_eq!(d.lambda(0, 0), 0.0);
        assert_eq!(d.phi(0, 3), 0.0);
        assert_eq!(d.dual_objective(), 0.0);
    }

    #[test]
    fn update_matches_hand_calculation() {
        let sc = scenario();
        let t = task();
        let mut d = DualState::new(&sc, 1000.0);
        let s = Schedule::new(0, VendorQuote::none(), vec![(0, 1)]);
        // s = 2 units, C = 4 units → frac 0.5; r = 39, C_m = 78 → frac 0.5.
        d.update(&t, &s, 2.0, 1.5, 1.2, 1000.0);
        // λ = 0·1.5 + 1.5·2·0.5 = 1.5 ; φ = 0 + 1.2·2·0.5 = 1.2.
        assert!((d.lambda(0, 1) - 1.5).abs() < 1e-12);
        assert!((d.phi(0, 1) - 1.2).abs() < 1e-12);
        // Second identical update: λ = 1.5·1.5 + 1.5 = 3.75.
        d.update(&t, &s, 2.0, 1.5, 1.2, 1000.0);
        assert!((d.lambda(0, 1) - 3.75).abs() < 1e-12);
        // Untouched cells stay zero.
        assert_eq!(d.lambda(0, 0), 0.0);
    }

    #[test]
    fn duals_are_monotone_nondecreasing() {
        let sc = scenario();
        let t = task();
        let mut d = DualState::new(&sc, 1000.0);
        let s = Schedule::new(0, VendorQuote::none(), vec![(0, 0), (0, 2)]);
        let mut prev_l = 0.0;
        let mut prev_p = 0.0;
        for _ in 0..10 {
            d.update(&t, &s, 1.0, 1.0, 1.0, 1000.0);
            assert!(d.lambda(0, 0) >= prev_l);
            assert!(d.phi(0, 2) >= prev_p);
            prev_l = d.lambda(0, 0);
            prev_p = d.phi(0, 2);
        }
    }

    #[test]
    fn lemma2_price_exceeds_alpha_once_capacity_is_hit() {
        // With b̄ ≥ 1, once cumulative committed compute reaches C_kp the
        // price satisfies λ ≥ α (Lemma 2's capacity-control mechanism).
        let sc = scenario();
        let t = task(); // 2 units per commit, C = 4 units.
        let mut d = DualState::new(&sc, 1000.0);
        let s = Schedule::new(0, VendorQuote::none(), vec![(0, 1)]);
        let alpha = 3.0;
        d.update(&t, &s, 1.0, alpha, 1.0, 1000.0); // cumulative 2/4
        d.update(&t, &s, 1.0, alpha, 1.0, 1000.0); // cumulative 4/4 = C
        assert!(
            d.lambda(0, 1) >= alpha,
            "λ = {} < α = {alpha}",
            d.lambda(0, 1)
        );
    }

    #[test]
    fn max_over_placements() {
        let sc = scenario();
        let t = task();
        let mut d = DualState::new(&sc, 1000.0);
        let s1 = Schedule::new(0, VendorQuote::none(), vec![(0, 1)]);
        d.update(&t, &s1, 2.0, 1.0, 1.0, 1000.0);
        assert!(d.max_lambda(&[(0, 0), (0, 1)]) > 0.0);
        assert_eq!(d.max_lambda(&[(0, 0)]), 0.0);
        assert_eq!(d.max_lambda(&[]), 0.0);
    }

    #[test]
    fn linear_rule_skips_the_compounding_term() {
        let sc = scenario();
        let t = task();
        let s = Schedule::new(0, VendorQuote::none(), vec![(0, 1)]);
        let mut mult = DualState::new(&sc, 1000.0);
        let mut lin = DualState::new(&sc, 1000.0);
        for _ in 0..3 {
            mult.update_with_rule(&t, &s, 1.0, 1.0, 1.0, 1000.0, DualRule::Multiplicative);
            lin.update_with_rule(&t, &s, 1.0, 1.0, 1.0, 1000.0, DualRule::Linear);
        }
        // Linear: 3 × 0.5 = 1.5 exactly; multiplicative compounds higher.
        assert!((lin.lambda(0, 1) - 1.5).abs() < 1e-12);
        assert!(mult.lambda(0, 1) > lin.lambda(0, 1));
    }

    #[test]
    fn off_rule_keeps_prices_at_zero() {
        let sc = scenario();
        let t = task();
        let s = Schedule::new(0, VendorQuote::none(), vec![(0, 1)]);
        let mut d = DualState::new(&sc, 1000.0);
        d.update_with_rule(&t, &s, 5.0, 9.0, 9.0, 1000.0, DualRule::Off);
        assert_eq!(d.lambda(0, 1), 0.0);
        assert_eq!(d.phi(0, 1), 0.0);
    }

    #[test]
    fn preheat_seeds_only_forecast_overloaded_slots() {
        // One node with 4 compute units per slot; a burst of tasks all
        // arriving at slot 2 carrying far more work than a 2-slot
        // window can host. Slots whose lookahead window sees the burst
        // get a positive λ seed; slots past it stay zero.
        let mut sc = scenario();
        for i in 0..4 {
            sc.tasks.push(
                TaskBuilder::new(i, 2, 3)
                    .dataset(8000)
                    .bid(16.0)
                    .memory_gb(10.0)
                    .rates(vec![4000])
                    .build()
                    .unwrap(),
            );
        }
        let mut d = DualState::new(&sc, 1000.0);
        d.preheat(
            &sc,
            1000.0,
            &PreheatSpec {
                lookahead: 2,
                gain: 0.5,
            },
        );
        // Window [2,4) sees 4·8 = 32 units vs 4·2 = 8 capacity.
        assert!(d.lambda(0, 2) > 0.0, "burst slot must be pre-heated");
        assert!(
            d.lambda(0, 1) > 0.0,
            "lookahead sees the burst one slot early"
        );
        assert_eq!(d.lambda(0, 0), 0.0, "slot 0's window [0,2) is quiet");
        // Memory: 40 GB vs 78 GB per slot — under capacity, φ stays 0.
        assert_eq!(d.phi(0, 2), 0.0);
        // Seeded λ = gain · (b/w) · (overload − 1)
        //          = 0.5 · (64/32) · (32/8 − 1) = 3.0.
        assert!((d.lambda(0, 2) - 3.0).abs() < 1e-12, "{}", d.lambda(0, 2));
        // Zero gain is a no-op.
        let mut z = DualState::new(&sc, 1000.0);
        z.preheat(
            &sc,
            1000.0,
            &PreheatSpec {
                lookahead: 2,
                gain: 0.0,
            },
        );
        assert_eq!(z.lambda(0, 2), 0.0);
    }

    #[test]
    fn dual_objective_accumulates_all_terms() {
        let sc = scenario();
        let t = task();
        let mut d = DualState::new(&sc, 1000.0);
        d.add_mu(5.0);
        let s = Schedule::new(0, VendorQuote::none(), vec![(0, 1)]);
        d.update(&t, &s, 2.0, 1.5, 1.2, 1000.0);
        // μ 5 + C_p·λ = 4·1.5 + C_m·φ = 78·1.2 = 5 + 6 + 93.6.
        assert!((d.dual_objective() - 104.6).abs() < 1e-9);
    }
}
