//! Dual-price state: `λ_kt` (compute) and `φ_kt` (memory).
//!
//! The duals act as posted resource prices. They start at zero and grow
//! multiplicatively with committed load per Eqs. (7)–(8):
//!
//! ```text
//! λ_kt ← λ_kt (1 + s_kt(il)/C_kp)        + α · b̄_il · s_kt(il)/C_kp
//! φ_kt ← φ_kt (1 + r_kt(il)/(C_km−r_b))  + β · b̄_il · r_kt(il)/(C_km−r_b)
//! ```
//!
//! Compute quantities are expressed in the pricing unit of
//! [`crate::config::PdftspConfig::compute_unit`] so `b̄_il` is O(1)
//! (Lemma 2's unit-scaling assumption).

use crate::config::DualRule;
use pdftsp_telemetry::{Event, Telemetry};
use pdftsp_types::{NodeId, Scenario, Schedule, Slot, Task};

/// Dense `K × T` grids of dual prices plus the capacity denominators.
#[derive(Debug, Clone)]
pub struct DualState {
    nodes: usize,
    horizon: usize,
    lambda: Vec<f64>,
    phi: Vec<f64>,
    /// `C_kp` per node, in pricing units.
    compute_cap_units: Vec<f64>,
    /// `C_km − r_b` per node, GB.
    adapter_cap: Vec<f64>,
    /// Accumulated `Σ_i μ_i` (for dual-objective instrumentation).
    mu_sum: f64,
}

impl DualState {
    /// Zero-initialized duals for `scenario` (Algorithm 1 line 1).
    #[must_use]
    pub fn new(scenario: &Scenario, compute_unit: f64) -> Self {
        let nodes = scenario.nodes.len();
        let horizon = scenario.horizon;
        DualState {
            nodes,
            horizon,
            lambda: vec![0.0; nodes * horizon],
            phi: vec![0.0; nodes * horizon],
            compute_cap_units: scenario
                .nodes
                .iter()
                .map(|n| n.compute_capacity as f64 / compute_unit)
                .collect(),
            adapter_cap: (0..nodes).map(|k| scenario.adapter_memory(k)).collect(),
            mu_sum: 0.0,
        }
    }

    #[inline]
    fn idx(&self, k: NodeId, t: Slot) -> usize {
        debug_assert!(k < self.nodes && t < self.horizon);
        k * self.horizon + t
    }

    /// Number of nodes (`K`) the price grids cover.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of slots (`T`) the price grids cover.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Compute price `λ_kt`.
    #[must_use]
    pub fn lambda(&self, k: NodeId, t: Slot) -> f64 {
        self.lambda[self.idx(k, t)]
    }

    /// Memory price `φ_kt`.
    #[must_use]
    pub fn phi(&self, k: NodeId, t: Slot) -> f64 {
        self.phi[self.idx(k, t)]
    }

    /// The full `λ_k·` price row of node `k` (length = horizon).
    ///
    /// Grid builders read whole rows so the `k × horizon` indexing is
    /// hoisted out of their slot loops.
    #[must_use]
    pub fn lambda_row(&self, k: NodeId) -> &[f64] {
        &self.lambda[k * self.horizon..(k + 1) * self.horizon]
    }

    /// The full `φ_k·` price row of node `k` (length = horizon).
    #[must_use]
    pub fn phi_row(&self, k: NodeId) -> &[f64] {
        &self.phi[k * self.horizon..(k + 1) * self.horizon]
    }

    /// `max_{(k,t)∈l} λ_kt` over a schedule's placements (0 for empty).
    #[must_use]
    pub fn max_lambda(&self, placements: &[(NodeId, Slot)]) -> f64 {
        placements
            .iter()
            .map(|&(k, t)| self.lambda(k, t))
            .fold(0.0, f64::max)
    }

    /// `max_{(k,t)∈l} φ_kt` over a schedule's placements (0 for empty).
    #[must_use]
    pub fn max_phi(&self, placements: &[(NodeId, Slot)]) -> f64 {
        placements
            .iter()
            .map(|&(k, t)| self.phi(k, t))
            .fold(0.0, f64::max)
    }

    /// Applies the Eq. (7)–(8) updates for an admitted schedule.
    ///
    /// `s_units(k)` must give `s_kt(il)` in pricing units; `b_bar` is the
    /// welfare density `b̄_il` (also in pricing units).
    pub fn update(
        &mut self,
        task: &Task,
        schedule: &Schedule,
        b_bar: f64,
        alpha: f64,
        beta: f64,
        compute_unit: f64,
    ) {
        self.update_with_rule(
            task,
            schedule,
            b_bar,
            alpha,
            beta,
            compute_unit,
            DualRule::Multiplicative,
        );
    }

    /// [`DualState::update`] with an explicit functional form (ablations).
    #[allow(clippy::too_many_arguments)]
    pub fn update_with_rule(
        &mut self,
        task: &Task,
        schedule: &Schedule,
        b_bar: f64,
        alpha: f64,
        beta: f64,
        compute_unit: f64,
        rule: DualRule,
    ) {
        self.update_logged(task, schedule, b_bar, alpha, beta, compute_unit, rule, None);
    }

    /// [`DualState::update_with_rule`] plus observability: emits one
    /// [`Event::DualUpdate`] (and one `dual_updates` count) per `(k, t)`
    /// placement touched. With `DualRule::Off` nothing is updated and
    /// nothing is emitted.
    #[allow(clippy::too_many_arguments)]
    pub fn update_logged(
        &mut self,
        task: &Task,
        schedule: &Schedule,
        b_bar: f64,
        alpha: f64,
        beta: f64,
        compute_unit: f64,
        rule: DualRule,
        telemetry: Option<&Telemetry>,
    ) {
        if rule == DualRule::Off {
            return;
        }
        for &(k, t) in &schedule.placements {
            let i = self.idx(k, t);
            let s = task.rate(k) as f64 / compute_unit;
            let cp = self.compute_cap_units[k];
            if cp > 0.0 {
                let frac = s / cp;
                let compounded = match rule {
                    DualRule::Multiplicative => self.lambda[i] * (1.0 + frac),
                    DualRule::Linear => self.lambda[i],
                    DualRule::Off => unreachable!(),
                };
                self.lambda[i] = compounded + alpha * b_bar * frac;
            }
            let cm = self.adapter_cap[k];
            if cm > 0.0 {
                let frac = task.memory_gb / cm;
                let compounded = match rule {
                    DualRule::Multiplicative => self.phi[i] * (1.0 + frac),
                    DualRule::Linear => self.phi[i],
                    DualRule::Off => unreachable!(),
                };
                self.phi[i] = compounded + beta * b_bar * frac;
            }
            if let Some(tel) = telemetry {
                let (lambda, phi) = (self.lambda[i], self.phi[i]);
                tel.emit(|| Event::DualUpdate {
                    task: task.id,
                    node: k,
                    slot: t,
                    lambda,
                    phi,
                });
            }
        }
        if let Some(tel) = telemetry {
            // One bump for the whole schedule keeps the hot path at a
            // single atomic per admission rather than one per placement.
            tel.counters
                .bump(&tel.counters.dual_updates, schedule.placements.len() as u64);
        }
    }

    /// Accumulates `μ_i` (Eq. 11) for dual-objective instrumentation.
    pub fn add_mu(&mut self, mu: f64) {
        debug_assert!(mu >= 0.0);
        self.mu_sum += mu;
    }

    /// The dual objective `D1` of Eq. (6):
    /// `Σ_i μ_i + Σ_kt C_kp λ_kt + Σ_kt (C_km − r_b) φ_kt`.
    ///
    /// By weak duality this upper-bounds the offline optimum of the
    /// (unit-scaled) schedule-selection problem; the competitive-ratio
    /// experiment logs it alongside the primal welfare.
    #[must_use]
    pub fn dual_objective(&self) -> f64 {
        let mut total = self.mu_sum;
        for k in 0..self.nodes {
            for t in 0..self.horizon {
                let i = k * self.horizon + t;
                total += self.compute_cap_units[k] * self.lambda[i];
                total += self.adapter_cap[k] * self.phi[i];
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdftsp_types::{CostGrid, GpuModel, NodeSpec, TaskBuilder, VendorQuote};

    fn scenario() -> Scenario {
        Scenario {
            horizon: 4,
            base_model_gb: 2.0,
            nodes: vec![NodeSpec::new(0, GpuModel::A100_80, 4000)],
            tasks: vec![],
            quotes: vec![],
            cost: CostGrid::flat(1, 4, 0.0),
        }
    }

    fn task() -> Task {
        TaskBuilder::new(0, 0, 3)
            .dataset(2000)
            .memory_gb(39.0)
            .bid(10.0)
            .rates(vec![2000])
            .build()
            .unwrap()
    }

    #[test]
    fn duals_start_at_zero() {
        let d = DualState::new(&scenario(), 1000.0);
        assert_eq!(d.lambda(0, 0), 0.0);
        assert_eq!(d.phi(0, 3), 0.0);
        assert_eq!(d.dual_objective(), 0.0);
    }

    #[test]
    fn update_matches_hand_calculation() {
        let sc = scenario();
        let t = task();
        let mut d = DualState::new(&sc, 1000.0);
        let s = Schedule::new(0, VendorQuote::none(), vec![(0, 1)]);
        // s = 2 units, C = 4 units → frac 0.5; r = 39, C_m = 78 → frac 0.5.
        d.update(&t, &s, 2.0, 1.5, 1.2, 1000.0);
        // λ = 0·1.5 + 1.5·2·0.5 = 1.5 ; φ = 0 + 1.2·2·0.5 = 1.2.
        assert!((d.lambda(0, 1) - 1.5).abs() < 1e-12);
        assert!((d.phi(0, 1) - 1.2).abs() < 1e-12);
        // Second identical update: λ = 1.5·1.5 + 1.5 = 3.75.
        d.update(&t, &s, 2.0, 1.5, 1.2, 1000.0);
        assert!((d.lambda(0, 1) - 3.75).abs() < 1e-12);
        // Untouched cells stay zero.
        assert_eq!(d.lambda(0, 0), 0.0);
    }

    #[test]
    fn duals_are_monotone_nondecreasing() {
        let sc = scenario();
        let t = task();
        let mut d = DualState::new(&sc, 1000.0);
        let s = Schedule::new(0, VendorQuote::none(), vec![(0, 0), (0, 2)]);
        let mut prev_l = 0.0;
        let mut prev_p = 0.0;
        for _ in 0..10 {
            d.update(&t, &s, 1.0, 1.0, 1.0, 1000.0);
            assert!(d.lambda(0, 0) >= prev_l);
            assert!(d.phi(0, 2) >= prev_p);
            prev_l = d.lambda(0, 0);
            prev_p = d.phi(0, 2);
        }
    }

    #[test]
    fn lemma2_price_exceeds_alpha_once_capacity_is_hit() {
        // With b̄ ≥ 1, once cumulative committed compute reaches C_kp the
        // price satisfies λ ≥ α (Lemma 2's capacity-control mechanism).
        let sc = scenario();
        let t = task(); // 2 units per commit, C = 4 units.
        let mut d = DualState::new(&sc, 1000.0);
        let s = Schedule::new(0, VendorQuote::none(), vec![(0, 1)]);
        let alpha = 3.0;
        d.update(&t, &s, 1.0, alpha, 1.0, 1000.0); // cumulative 2/4
        d.update(&t, &s, 1.0, alpha, 1.0, 1000.0); // cumulative 4/4 = C
        assert!(
            d.lambda(0, 1) >= alpha,
            "λ = {} < α = {alpha}",
            d.lambda(0, 1)
        );
    }

    #[test]
    fn max_over_placements() {
        let sc = scenario();
        let t = task();
        let mut d = DualState::new(&sc, 1000.0);
        let s1 = Schedule::new(0, VendorQuote::none(), vec![(0, 1)]);
        d.update(&t, &s1, 2.0, 1.0, 1.0, 1000.0);
        assert!(d.max_lambda(&[(0, 0), (0, 1)]) > 0.0);
        assert_eq!(d.max_lambda(&[(0, 0)]), 0.0);
        assert_eq!(d.max_lambda(&[]), 0.0);
    }

    #[test]
    fn linear_rule_skips_the_compounding_term() {
        let sc = scenario();
        let t = task();
        let s = Schedule::new(0, VendorQuote::none(), vec![(0, 1)]);
        let mut mult = DualState::new(&sc, 1000.0);
        let mut lin = DualState::new(&sc, 1000.0);
        for _ in 0..3 {
            mult.update_with_rule(&t, &s, 1.0, 1.0, 1.0, 1000.0, DualRule::Multiplicative);
            lin.update_with_rule(&t, &s, 1.0, 1.0, 1.0, 1000.0, DualRule::Linear);
        }
        // Linear: 3 × 0.5 = 1.5 exactly; multiplicative compounds higher.
        assert!((lin.lambda(0, 1) - 1.5).abs() < 1e-12);
        assert!(mult.lambda(0, 1) > lin.lambda(0, 1));
    }

    #[test]
    fn off_rule_keeps_prices_at_zero() {
        let sc = scenario();
        let t = task();
        let s = Schedule::new(0, VendorQuote::none(), vec![(0, 1)]);
        let mut d = DualState::new(&sc, 1000.0);
        d.update_with_rule(&t, &s, 5.0, 9.0, 9.0, 1000.0, DualRule::Off);
        assert_eq!(d.lambda(0, 1), 0.0);
        assert_eq!(d.phi(0, 1), 0.0);
    }

    #[test]
    fn dual_objective_accumulates_all_terms() {
        let sc = scenario();
        let t = task();
        let mut d = DualState::new(&sc, 1000.0);
        d.add_mu(5.0);
        let s = Schedule::new(0, VendorQuote::none(), vec![(0, 1)]);
        d.update(&t, &s, 2.0, 1.5, 1.2, 1000.0);
        // μ 5 + C_p·λ = 4·1.5 + C_m·φ = 78·1.2 = 5 + 6 + 93.6.
        assert!((d.dual_objective() - 104.6).abs() < 1e-9);
    }
}
