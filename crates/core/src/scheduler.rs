//! Algorithm 1: the online task scheduling and pricing loop.
//!
//! Per arriving task `i`:
//!
//! 1. collect the vendor quotes `{q_in, h_in}` when `f_i = 1`;
//! 2. run Algorithm 2 ([`crate::dp::find_schedule`]) once per candidate
//!    vendor (or once with no vendor) and keep the schedule maximizing the
//!    surplus `F(il)` of Eq. (10);
//! 3. if `F(il) > 0`, update the duals per Eqs. (7)–(8) and set
//!    `μ_i = F(il)` (Eq. 11);
//! 4. check residual capacity (line 8): admit and commit when every chosen
//!    `(k, t)` still fits, otherwise reject (the Almost-Feasible →
//!    Feasible conversion of Lemma 1);
//! 5. charge the payment of Eq. (14) computed with the *pre-update* duals.

use crate::config::{AlphaBeta, CapacityPolicy, EvalPipeline, PdftspConfig};
use crate::dp::{
    find_schedule_on_grid, find_schedule_reference, DpBuffers, DpContext, DpResult, EvalScratch,
};
use crate::duals::DualState;
use crate::grid::DeltaGrid;
use crate::kernel::KernelDispatch;
use crate::pricing::payment;
use pdftsp_cluster::{configured_threads, parallel_map, CapacityLedger, LedgerError, Released};
use pdftsp_telemetry::{Event, Reason, Span, Telemetry};
use pdftsp_types::{
    Decision, OnlineScheduler, Rejection, Scenario, Schedule, Slot, SlotOutcome, Task, TaskId,
    VendorQuote,
};
use std::sync::Mutex;
use std::time::Instant;

/// Per-task auction bookkeeping (drives Figs. 10–11, welfare reports,
/// and the theory audit of [`crate::analysis`]).
#[derive(Debug, Clone, PartialEq)]
pub struct AuctionRecord {
    /// Task id.
    pub task: TaskId,
    /// Declared bid `b_i`.
    pub bid: f64,
    /// Best surplus `F(il)` found (`None` when no feasible schedule).
    pub f_value: Option<f64>,
    /// Welfare increment `b_il` of the selected schedule (`None` when no
    /// feasible schedule).
    pub welfare_increment: Option<f64>,
    /// Payment `p_i` (0 unless admitted).
    pub payment: f64,
    /// Whether the bid won.
    pub admitted: bool,
    /// `F(il) > 0` but residual capacity refused the schedule — the task
    /// is in Lemma 1's almost-feasible set `S_a` but not in `S_c`.
    pub capacity_rejected: bool,
    /// `max λ^{(i-1)}` over the selected schedule at decision time (0 when
    /// no feasible schedule). Snapshotted so a later partial-failure
    /// refund can re-run the Eq. (14) charge over just the executed prefix
    /// with the *same* prices the buyer was originally quoted.
    pub max_lambda: f64,
    /// `max φ^{(i-1)}` at decision time (0 when no feasible schedule).
    pub max_phi: f64,
}

/// A schedule candidate with its admission economics.
#[derive(Debug, Clone)]
pub(crate) struct Candidate {
    pub schedule: Schedule,
    /// `b_il = b_i − q_in − Σ e`.
    pub b_il: f64,
    /// `F(il)` per Eq. (10).
    pub f_value: f64,
    /// `max λ^{(i-1)}` over the schedule (for pricing).
    pub max_lambda: f64,
    /// `max φ^{(i-1)}` over the schedule (for pricing).
    pub max_phi: f64,
    /// `Σ e_ikt`.
    pub energy: f64,
}

/// What one arrival's evaluation produced.
pub(crate) struct EvalOutcome {
    /// The surplus-maximizing candidate, if any vendor was worth a DP.
    pub best: Option<Candidate>,
    /// At least one vendor was skipped by the admission bound. The skip
    /// proves that vendor's `F(il) ≤ 0`, so when `best` is also `None`
    /// the task is rejected for non-positive surplus without ever running
    /// a DP.
    pub pruned: bool,
}

/// The pdFTSP online scheduler (auctioneer).
///
/// ```
/// use pdftsp_core::{Pdftsp, PdftspConfig};
/// use pdftsp_types::{CostGrid, GpuModel, NodeSpec, Scenario, TaskBuilder};
///
/// let scenario = Scenario {
///     horizon: 8,
///     base_model_gb: 1.3,
///     nodes: vec![NodeSpec::new(0, GpuModel::A100_80, 10_000)],
///     tasks: vec![TaskBuilder::new(0, 0, 7)
///         .dataset(6_000)
///         .bid(20.0)
///         .memory_gb(4.0)
///         .rates(vec![3_000])
///         .build()
///         .unwrap()],
///     quotes: vec![vec![]],
///     cost: CostGrid::flat(1, 8, 0.2),
/// };
/// let mut auctioneer = Pdftsp::new(&scenario, PdftspConfig::default());
/// let decision = auctioneer.decide(&scenario.tasks[0], &scenario);
/// assert!(decision.is_admitted());
/// // The winner pays at most its bid (individual rationality).
/// assert!(decision.payment() <= 20.0);
/// ```
pub struct Pdftsp {
    config: PdftspConfig,
    duals: DualState,
    ledger: CapacityLedger,
    alpha: f64,
    beta: f64,
    records: Vec<AuctionRecord>,
    /// Reusable per-arrival work area (delta grid + DP arena). Behind a
    /// mutex only so `evaluate` can stay `&self` (the probes of
    /// [`crate::probe`] run against shared scheduler references, possibly
    /// from a parallel sweep); the online loop itself is single-threaded
    /// per scheduler, so the lock is always uncontended.
    scratch: Mutex<EvalScratch>,
    /// Worker threads, cached at construction: the hardware's parallelism
    /// unless overridden by `PDFTSP_THREADS` or
    /// [`pdftsp_cluster::set_thread_override`]. The vendor-parallel branch
    /// is skipped when this is 1: dispatching workers on a single core is
    /// pure overhead, and the sequential path additionally gets to use its
    /// incumbent skip and shared-start memo.
    workers: usize,
    /// The resolved DP row kernel ([`PdftspConfig::kernel`], resolved
    /// once). Private worker arenas in the vendor-parallel branch inherit
    /// it.
    kernel: KernelDispatch,
    /// Observability: typed event stream + always-on counters. Defaults to
    /// [`Telemetry::disabled`] (no-op sink), where emission is one cached
    /// branch per site — the overhead-guard bench proves it stays under 2%
    /// of the decide path.
    telemetry: Telemetry,
}

impl Pdftsp {
    /// Creates a scheduler for `scenario` with telemetry disabled.
    #[must_use]
    pub fn new(scenario: &Scenario, config: PdftspConfig) -> Self {
        Pdftsp::with_telemetry(scenario, config, Telemetry::disabled())
    }

    /// Creates a scheduler whose events flow into `telemetry`'s sink (its
    /// counters run regardless).
    #[must_use]
    pub fn with_telemetry(scenario: &Scenario, config: PdftspConfig, telemetry: Telemetry) -> Self {
        Pdftsp::with_workers(scenario, config, telemetry, configured_threads())
    }

    /// Like [`Pdftsp::with_telemetry`], but with an explicit worker count
    /// for the vendor-parallel branch instead of the process-wide
    /// [`pdftsp_cluster::configured_threads`]. The sharded auction
    /// service constructs one scheduler per shard with `workers = 1`:
    /// the shards themselves run under the scoped parallel map, and
    /// pinning the per-shard vendor loop sequential keeps the two
    /// parallelism layers from nesting while leaving every decision
    /// bit-identical to a single-thread run.
    pub fn with_workers(
        scenario: &Scenario,
        config: PdftspConfig,
        telemetry: Telemetry,
        workers: usize,
    ) -> Self {
        let (alpha, beta) = match config.alpha_beta {
            AlphaBeta::Fixed { alpha, beta } => (alpha, beta),
            AlphaBeta::RunningMax {
                floor_alpha,
                floor_beta,
            } => (floor_alpha, floor_beta),
        };
        let kernel = config.kernel.resolve();
        let mut duals = DualState::new(scenario, config.compute_unit);
        if let Some(spec) = &config.preheat {
            // Prediction-driven pre-heating: seed prices where the
            // forecast says demand will outrun capacity. Pure function
            // of the scenario, so sharded replicas agree bit-for-bit.
            duals.preheat(scenario, config.compute_unit, spec);
        }
        Pdftsp {
            config,
            duals,
            ledger: CapacityLedger::new(scenario),
            alpha,
            beta,
            records: Vec::new(),
            scratch: Mutex::new(EvalScratch::with_kernel(kernel)),
            workers: workers.max(1),
            telemetry,
            kernel,
        }
    }

    /// The DP row kernel this scheduler resolved at construction.
    #[must_use]
    pub fn kernel(&self) -> KernelDispatch {
        self.kernel
    }

    /// Worker threads the vendor-parallel branch may use (cached at
    /// construction from [`pdftsp_cluster::configured_threads`]).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configuration this scheduler runs with.
    #[must_use]
    pub fn config(&self) -> &PdftspConfig {
        &self.config
    }

    /// Current `α` (after running-max updates so far).
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Current `β`.
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Read access to the dual prices (instrumentation).
    #[must_use]
    pub fn duals(&self) -> &DualState {
        &self.duals
    }

    /// Read access to the capacity ledger (instrumentation).
    #[must_use]
    pub fn ledger(&self) -> &CapacityLedger {
        &self.ledger
    }

    /// The auction log so far.
    #[must_use]
    pub fn records(&self) -> &[AuctionRecord] {
        &self.records
    }

    /// The telemetry handle (events + hot-path counters).
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Evaluates the best schedule for `task` against the current prices
    /// without mutating any state.
    pub(crate) fn evaluate(&self, task: &Task, scenario: &Scenario) -> EvalOutcome {
        let ctx = DpContext {
            scenario,
            duals: &self.duals,
            ledger: match self.config.capacity_policy {
                CapacityPolicy::RejectOnOverflow => None,
                CapacityPolicy::MaskSaturated => Some(&self.ledger),
            },
            compute_unit: self.config.compute_unit,
            telemetry: Some(&self.telemetry),
        };
        let no_vendor = [VendorQuote::none()];
        let quotes: &[VendorQuote] = if task.needs_preprocessing {
            &scenario.quotes[task.id]
        } else {
            &no_vendor
        };
        match self.config.pipeline {
            EvalPipeline::Reference => self.evaluate_reference(&ctx, task, quotes),
            EvalPipeline::Optimized => self.evaluate_optimized(&ctx, task, quotes),
        }
    }

    /// Packages a vendor's DP result into a [`Candidate`] — the exact
    /// `F(il)` of Eq. (10). Shared by both pipelines so their admission
    /// arithmetic is the same code.
    fn candidate_from(&self, task: &Task, quote: VendorQuote, dp: DpResult) -> Candidate {
        let schedule = Schedule::new(task.id, quote, dp.placements);
        let b_il = task.bid - quote.price - dp.energy;
        let max_lambda = self.duals.max_lambda(&schedule.placements);
        let max_phi = self.duals.max_phi(&schedule.placements);
        let compute_units = schedule.total_compute(task) as f64 / self.config.compute_unit;
        let memory = schedule.total_memory(task);
        let f_value = b_il - max_lambda * compute_units - max_phi * memory;
        Candidate {
            schedule,
            b_il,
            f_value,
            max_lambda,
            max_phi,
            energy: dp.energy,
        }
    }

    /// The straight-line pipeline: one full reference DP per vendor.
    fn evaluate_reference(
        &self,
        ctx: &DpContext<'_>,
        task: &Task,
        quotes: &[VendorQuote],
    ) -> EvalOutcome {
        let counters = &self.telemetry.counters;
        counters.bump(&counters.vendors_seen, quotes.len() as u64);
        let mut best: Option<Candidate> = None;
        for &quote in quotes {
            let start = task.arrival + quote.delay;
            let Some(dp) = find_schedule_reference(ctx, task, start) else {
                continue;
            };
            let cand = self.candidate_from(task, quote, dp);
            if best.as_ref().is_none_or(|b| cand.f_value > b.f_value) {
                best = Some(cand);
            }
        }
        EvalOutcome {
            best,
            pruned: false,
        }
    }

    /// The grid pipeline: build the shared delta grid once, bound every
    /// vendor cheaply, then run (possibly parallel) DPs only for vendors
    /// that could still win.
    fn evaluate_optimized(
        &self,
        ctx: &DpContext<'_>,
        task: &Task,
        quotes: &[VendorQuote],
    ) -> EvalOutcome {
        let mut guard = self.scratch.lock().expect("scratch mutex poisoned");
        let scratch = &mut *guard;
        scratch.grid.build(ctx, task, task.arrival);
        if scratch.grid.is_unusable() {
            return EvalOutcome {
                best: None,
                pruned: false,
            };
        }
        // Cheap per-vendor pass: certain infeasibility and the surplus
        // upper bound `F(il) ≤ b_i − q_in − lower_bound(dp_cost)`.
        let counters = &self.telemetry.counters;
        counters.bump(&counters.vendors_seen, quotes.len() as u64);
        let mut plans: Vec<(VendorQuote, Slot, f64)> = Vec::with_capacity(quotes.len());
        let mut pruned = false;
        for &quote in quotes {
            let start = task.arrival + quote.delay;
            let Some(lb) =
                scratch
                    .grid
                    .cost_lower_bound(task, start, &mut scratch.bufs.col_scratch)
            else {
                continue; // provably infeasible — the reference DP agrees
            };
            let upper = task.bid - quote.price - lb;
            if upper <= 0.0 {
                pruned = true; // F(il) ≤ 0 proven without a DP
                counters.bump(&counters.vendors_pruned, 1);
                self.telemetry.emit(|| Event::VendorPruned {
                    task: task.id,
                    vendor: quote.vendor,
                    bound: upper,
                });
                continue;
            }
            plans.push((quote, start, upper));
        }

        let mut best: Option<Candidate> = None;
        let par_min = self.config.parallel_vendor_min;
        // A threshold explicitly at the floor (≤ 2) demands the parallel
        // branch unconditionally — the equivalence tests rely on that.
        // Larger thresholds additionally require real hardware threads:
        // dispatching workers on a single core costs more than it saves
        // and forfeits the sequential path's incumbent skip and memo.
        if plans.len() >= par_min.max(2) && (self.workers > 1 || par_min <= 2) {
            // Vendor-parallel: one DP per *distinct start slot* (vendors
            // quoting the same delay share it), workers share the grid
            // read-only and carry private DP arenas; the fold below
            // replays the reference's quote order and strict-> tie-break
            // exactly.
            let grid: &DeltaGrid = &scratch.grid;
            let mut starts: Vec<Slot> = plans.iter().map(|&(_, start, _)| start).collect();
            starts.sort_unstable();
            starts.dedup();
            counters.bump(
                &counters.vendors_memoized,
                (plans.len() - starts.len()) as u64,
            );
            let results = parallel_map(&starts, |&start| {
                let mut local = DpBuffers::with_kernel(self.kernel);
                find_schedule_on_grid(ctx, task, start, grid, &mut local)
            });
            for &(quote, start, _) in &plans {
                let i = starts
                    .binary_search(&start)
                    .expect("start was collected above");
                let Some(dp) = &results[i] else { continue };
                let cand = self.candidate_from(task, quote, dp.clone());
                if best.as_ref().is_none_or(|b| cand.f_value > b.f_value) {
                    best = Some(cand);
                }
            }
        } else if let [(quote, start, _)] = plans[..] {
            // Single survivor: no ordering or memo bookkeeping to pay for.
            if let Some(dp) =
                find_schedule_on_grid(ctx, task, start, &scratch.grid, &mut scratch.bufs)
            {
                best = Some(self.candidate_from(task, quote, dp));
            }
        } else {
            // Sequential: visit vendors in descending upper-bound order so
            // the strongest candidate is usually found first and the rest
            // are skipped by the incumbent test. The reference resolves
            // `F(il)` ties in favour of the earliest quote, so order
            // changes must not change the winner: the skip fires on a tie
            // only against a *later* quote, and the replacement test
            // prefers the earlier quote on exactly-equal `F(il)`.
            let mut order: Vec<usize> = (0..plans.len()).collect();
            order.sort_unstable_by(|&a, &b| plans[b].2.total_cmp(&plans[a].2).then(a.cmp(&b)));
            let mut memo: Vec<(Slot, Option<DpResult>)> = Vec::with_capacity(plans.len());
            let mut best_at: usize = usize::MAX;
            for &pi in &order {
                let (quote, start, upper) = plans[pi];
                if let Some(b) = &best {
                    if upper < b.f_value || (upper == b.f_value && pi > best_at) {
                        // Provably cannot displace the incumbent — a
                        // bound-based discharge, counted with the prunes
                        // (no event: F(il) ≤ 0 was not proven).
                        counters.bump(&counters.vendors_pruned, 1);
                        continue;
                    }
                }
                // Vendors with equal delay share one DP (same start, same
                // grid slice ⇒ bit-identical result).
                let dp = match memo.iter().find(|&&(s, _)| s == start) {
                    Some((_, cached)) => {
                        counters.bump(&counters.vendors_memoized, 1);
                        cached.clone()
                    }
                    None => {
                        let r = find_schedule_on_grid(
                            ctx,
                            task,
                            start,
                            &scratch.grid,
                            &mut scratch.bufs,
                        );
                        memo.push((start, r.clone()));
                        r
                    }
                };
                let Some(dp) = dp else { continue };
                let cand = self.candidate_from(task, quote, dp);
                let wins = match &best {
                    None => true,
                    Some(b) => {
                        cand.f_value > b.f_value || (cand.f_value == b.f_value && pi < best_at)
                    }
                };
                if wins {
                    best = Some(cand);
                    best_at = pi;
                }
            }
        }
        EvalOutcome { best, pruned }
    }

    /// Appends one auction-log entry (all four decision outcomes funnel
    /// through here).
    fn push_record(
        &mut self,
        task: &Task,
        cand: Option<&Candidate>,
        payment: f64,
        admitted: bool,
        capacity_rejected: bool,
    ) {
        self.records.push(AuctionRecord {
            task: task.id,
            bid: task.bid,
            f_value: cand.map(|c| c.f_value),
            welfare_increment: cand.map(|c| c.b_il),
            payment,
            admitted,
            capacity_rejected,
            max_lambda: cand.map_or(0.0, |c| c.max_lambda),
            max_phi: cand.map_or(0.0, |c| c.max_phi),
        });
    }

    /// Records the end of one `decide()` call in the counters (and, for
    /// rejections, the event stream; admissions emit separately because
    /// the event borrows the winning candidate).
    fn finish_decide(&self, task: &Task, t0: Instant, reject: Option<Reason>) -> f64 {
        let secs = t0.elapsed().as_secs_f64();
        let c = &self.telemetry.counters;
        c.decide_latency.record_seconds(secs);
        // One `propose` span per decide (admitted or not), timestamped on
        // the sim clock by the arrival slot plus a per-slot sequence —
        // never the wall clock, so traces are worker-count invariant.
        // Suppressed while a crash-recovery resubmission re-enters
        // `decide()`: the remnant's detour is covered by its
        // `fault_recover` span instead of a colliding duplicate.
        if self.telemetry.is_enabled() && !self.telemetry.spans.suppressed() {
            self.telemetry.emit(|| {
                let ctx = &self.telemetry.spans;
                Event::Span(Span::propose(
                    task.id,
                    ctx.shard(),
                    ctx.epoch(),
                    ctx.next_propose_ts(task.arrival),
                ))
            });
        }
        match reject {
            None => c.bump(&c.admitted, 1),
            Some(reason) => {
                match reason {
                    Reason::NoFeasibleSchedule => c.bump(&c.rejected_infeasible, 1),
                    Reason::NonPositiveSurplus => c.bump(&c.rejected_surplus, 1),
                    Reason::InsufficientCapacity => c.bump(&c.rejected_capacity, 1),
                }
                self.telemetry.emit(|| Event::Rejected {
                    task: task.id,
                    reason,
                });
            }
        }
        secs
    }

    /// Handles one arriving task: the body of Algorithm 1's loop.
    pub fn decide(&mut self, task: &Task, scenario: &Scenario) -> Decision {
        let t0 = Instant::now();
        let counters = &self.telemetry.counters;
        counters.bump(&counters.decisions, 1);
        self.telemetry.emit(|| Event::ArrivalSeen {
            task: task.id,
            slot: task.arrival,
            bid: task.bid,
            vendors: if task.needs_preprocessing {
                scenario.quotes[task.id].len()
            } else {
                0
            },
        });

        // Running-max α/β estimation, updated on every arrival:
        // α = max b_i/M_i (Lemma 2, in pricing units); β is normalized by
        // the task's full memory footprint r_i·ℓ_i rather than Lemma 2's
        // single-slot r_i — see `AlphaBeta::RunningMax` for why.
        if let AlphaBeta::RunningMax { .. } = self.config.alpha_beta {
            let m_units = task.work as f64 / self.config.compute_unit;
            if m_units > 0.0 {
                self.alpha = self.alpha.max(task.bid / m_units);
            }
            let min_slots = task
                .rates
                .iter()
                .filter(|&&s| s > 0)
                .map(|&s| task.work.div_ceil(s))
                .min()
                .unwrap_or(1)
                .max(1);
            let footprint = task.memory_gb * min_slots as f64;
            if footprint > 0.0 {
                self.beta = self.beta.max(task.bid / footprint);
            }
        }

        let outcome = self.evaluate(task, scenario);
        let Some(cand) = outcome.best else {
            self.push_record(task, None, 0.0, false, false);
            // With no candidate but at least one pruned vendor, that
            // vendor's F(il) ≤ 0 was proven without a DP: reject for
            // non-positive surplus, like the reference would (its exact
            // F(il) is simply not in the record).
            let (reason, ev_reason) = if outcome.pruned {
                (Rejection::NonPositiveSurplus, Reason::NonPositiveSurplus)
            } else {
                (Rejection::NoFeasibleSchedule, Reason::NoFeasibleSchedule)
            };
            let secs = self.finish_decide(task, t0, Some(ev_reason));
            return Decision::rejected(task.id, reason, secs);
        };

        if cand.f_value <= 0.0 {
            self.push_record(task, Some(&cand), 0.0, false, false);
            let secs = self.finish_decide(task, t0, Some(Reason::NonPositiveSurplus));
            return Decision::rejected(task.id, Rejection::NonPositiveSurplus, secs);
        }

        // F(il) > 0: dual update happens before the capacity check
        // (Algorithm 1 lines 6–8). Payment uses the pre-update duals.
        let p = payment(
            self.config.pricing,
            task,
            &cand.schedule,
            cand.max_lambda,
            cand.max_phi,
            self.config.compute_unit,
            cand.energy,
        );
        // Budget-capped bidders (spot market): a payment beyond the
        // bidder's remaining budget makes the trade non-executable, so
        // reject before any dual or ledger state is touched — exactly
        // like a non-positive-surplus loser, the auction is left as if
        // the bid never won. Payment uses pre-update duals, so the
        // check is bid-independent for winners (truthfulness intact).
        if let Some(budget) = task.budget {
            if p > budget {
                self.push_record(task, Some(&cand), 0.0, false, false);
                let secs = self.finish_decide(task, t0, Some(Reason::NonPositiveSurplus));
                return Decision::rejected(task.id, Rejection::BudgetExceeded, secs);
            }
        }

        let b_bar = cand.schedule.welfare_density(task, &scenario.cost);
        // welfare_density divides by raw samples; re-derive in pricing
        // units so b̄ matches the scaled arithmetic of Eqs. (7)-(8).
        let denom = cand.schedule.total_compute(task) as f64 / self.config.compute_unit
            + cand.schedule.total_memory(task);
        let b_bar = if denom > 0.0 {
            cand.b_il / denom
        } else {
            b_bar
        };
        self.duals.add_mu(cand.f_value.max(0.0));
        self.duals.update_logged(
            task,
            &cand.schedule,
            b_bar,
            self.config.seed_damping * self.alpha,
            self.config.seed_damping * self.beta,
            self.config.compute_unit,
            self.config.dual_rule,
            Some(&self.telemetry),
        );

        if self.ledger.fits_schedule(task, &cand.schedule) {
            self.ledger
                .commit(task, &cand.schedule)
                .expect("fits_schedule checked");
            self.push_record(task, Some(&cand), p, true, false);
            let secs = self.finish_decide(task, t0, None);
            self.telemetry.emit(|| Event::Admitted {
                task: task.id,
                surplus: cand.f_value,
                payment: p,
                placements: cand.schedule.placements.len(),
            });
            Decision::admitted(task.id, cand.schedule, p, secs)
        } else {
            self.push_record(task, Some(&cand), 0.0, false, true);
            let secs = self.finish_decide(task, t0, Some(Reason::InsufficientCapacity));
            Decision::rejected(task.id, Rejection::InsufficientCapacity, secs)
        }
    }

    // ------------------------------------------------------------------
    // Fault-recovery surface. The fault driver (`pdftsp-sim::faults`)
    // calls these between arrivals; none of them run on the clean path.
    // ------------------------------------------------------------------

    /// Returns `task`'s resources on `placements` to the pool — the
    /// not-yet-executed suffix of a schedule disrupted by a node failure.
    ///
    /// # Errors
    /// Propagates the ledger's atomic validation (releasing cells that
    /// were never committed is refused).
    pub fn release_placements(
        &mut self,
        task: &Task,
        placements: &[(usize, Slot)],
    ) -> Result<Released, LedgerError> {
        self.ledger.release_placements(task, placements)
    }

    /// Marks node `k` as failed from `from` on: its residual capacity is
    /// quarantined so the DP and admission checks stop offering it.
    /// Release disrupted schedules *before* calling this, so their freed
    /// capacity is captured inside the quarantine hold.
    ///
    /// Returns `false` when `k` is out of range or already down.
    pub fn quarantine_node(&mut self, k: usize, from: Slot) -> bool {
        if !self.ledger.quarantine(k, from) {
            return false;
        }
        let c = &self.telemetry.counters;
        c.bump(&c.node_failures, 1);
        self.telemetry.emit(|| Event::NodeDown {
            node: k,
            slot: from,
        });
        true
    }

    /// Brings a failed node back at `slot`: the quarantine hold is
    /// returned exactly, so every cell offers what it did when the node
    /// went down (minus anything still committed from before the crash).
    ///
    /// Returns `false` when `k` was not quarantined.
    pub fn restore_node(&mut self, k: usize, slot: Slot) -> bool {
        if !self.ledger.lift_quarantine(k) {
            return false;
        }
        let c = &self.telemetry.counters;
        c.bump(&c.node_recoveries, 1);
        self.telemetry.emit(|| Event::NodeUp { node: k, slot });
        true
    }

    /// Degrades node `k` from slot `from` on: for each cell, up to
    /// `frac` of its *total* capacity (compute and adapter memory) is
    /// reserved out of the residual, shrinking what future admissions can
    /// use. Already-committed work is untouched — degradation throttles
    /// the future, it does not evict the present. Returns the total
    /// `(samples, GB)` actually reserved.
    pub fn degrade_node(&mut self, k: usize, from: Slot, frac: f64) -> (u64, f64) {
        let frac = frac.clamp(0.0, 1.0);
        let horizon = self.ledger.horizon();
        if k >= self.ledger.nodes() {
            return (0, 0.0);
        }
        let mut total_compute = 0u64;
        let mut total_mem = 0.0f64;
        for t in from.min(horizon)..horizon {
            let compute = ((self.ledger.compute_capacity(k) as f64 * frac) as u64)
                .min(self.ledger.residual_compute(k, t));
            let mem =
                (self.ledger.adapter_capacity(k) * frac).min(self.ledger.residual_memory(k, t));
            if self.ledger.reserve(k, t, compute, mem).is_ok() {
                total_compute += compute;
                total_mem += mem;
            }
        }
        (total_compute, total_mem)
    }

    /// Re-runs the Algorithm 1 auction for a disrupted task's remnant
    /// (remaining work repackaged as a fresh task with the same id): the
    /// Algorithm 2 DP under the *current* duals `λ/φ`, the Eq. (10)
    /// admission test, dual updates and capacity commit — exactly the
    /// clean-path `decide`, plus recovery telemetry. `fail_slot` is the
    /// slot of the failure that disrupted the original schedule.
    pub fn resubmit(&mut self, remnant: &Task, scenario: &Scenario, fail_slot: Slot) -> Decision {
        // Suppress the propose span for the inner decide: the remnant
        // shares its task id with the original admission, and its detour
        // through recovery is already covered by the `fault_recover`
        // span; a second propose span would collide with the first.
        self.telemetry.spans.set_suppressed(true);
        let decision = self.decide(remnant, scenario);
        self.telemetry.spans.set_suppressed(false);
        let c = &self.telemetry.counters;
        c.bump(&c.tasks_resubmitted, 1);
        if decision.is_admitted() {
            c.bump(&c.recoveries_admitted, 1);
        }
        self.telemetry.emit(|| Event::TaskResubmitted {
            task: remnant.id,
            slot: fail_slot,
            remaining_work: remnant.work,
            admitted: decision.is_admitted(),
        });
        decision
    }

    /// Settles an unrecoverable disrupted task: the buyer keeps paying
    /// only for consumed resources — Eq. (14) re-evaluated over the
    /// executed `prefix` with the duals snapshotted at the original
    /// admission — and is refunded the rest of the original payment.
    /// `prefix_energy` is the operational cost of the executed slots.
    ///
    /// Returns `(refund, consumed)`, or `None` when `task` has no
    /// admitted auction record (nothing was ever charged).
    pub fn issue_refund(
        &mut self,
        task: &Task,
        fail_slot: Slot,
        prefix: &Schedule,
        prefix_energy: f64,
    ) -> Option<(f64, f64)> {
        let rec = self
            .records
            .iter()
            .find(|r| r.task == task.id && r.admitted)?;
        let charged = rec.payment;
        let consumed = payment(
            self.config.pricing,
            task,
            prefix,
            rec.max_lambda,
            rec.max_phi,
            self.config.compute_unit,
            prefix_energy,
        )
        .clamp(0.0, charged);
        let refund = charged - consumed;
        let c = &self.telemetry.counters;
        c.bump(&c.refunds_issued, 1);
        self.telemetry.emit(|| Event::RefundIssued {
            task: task.id,
            slot: fail_slot,
            refund,
            consumed,
        });
        Some((refund, consumed))
    }
}

impl OnlineScheduler for Pdftsp {
    fn name(&self) -> &'static str {
        match self.config.pipeline {
            EvalPipeline::Optimized => "pdFTSP",
            EvalPipeline::Reference => "pdFTSP-ref",
        }
    }

    fn on_slot(&mut self, _slot: Slot, arrivals: &[&Task], scenario: &Scenario) -> SlotOutcome {
        arrivals.iter().map(|t| self.decide(t, scenario)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdftsp_types::{CostGrid, GpuModel, NodeSpec, TaskBuilder};

    fn scenario(tasks: Vec<Task>, quotes: Vec<Vec<VendorQuote>>, capacity: u64) -> Scenario {
        Scenario {
            horizon: 8,
            base_model_gb: 2.0,
            nodes: vec![NodeSpec::new(0, GpuModel::A100_80, capacity)],
            tasks,
            quotes,
            cost: CostGrid::flat(1, 8, 0.1),
        }
    }

    fn simple_task(id: usize, bid: f64) -> Task {
        TaskBuilder::new(id, 0, 7)
            .dataset(2000)
            .memory_gb(5.0)
            .bid(bid)
            .rates(vec![1000])
            .build()
            .unwrap()
    }

    #[test]
    fn first_task_on_empty_cluster_is_admitted_cheaply() {
        let sc = scenario(vec![simple_task(0, 10.0)], vec![vec![]], 4000);
        let mut p = Pdftsp::new(&sc, PdftspConfig::default());
        let d = p.decide(&sc.tasks[0], &sc);
        assert!(d.is_admitted());
        // Duals are zero and no vendor → the winner pays exactly the
        // operational cost of its 2 slots (0.1 each).
        assert!((d.payment() - 0.2).abs() < 1e-9);
        let s = d.schedule().unwrap();
        assert!(s.validate(&sc.tasks[0]).is_ok());
        assert_eq!(s.placements.len(), 2);
    }

    #[test]
    fn unprofitable_task_is_rejected() {
        // Energy cost 2 slots × 0.1 = 0.2 > bid.
        let sc = scenario(vec![simple_task(0, 0.15)], vec![vec![]], 4000);
        let mut p = Pdftsp::new(&sc, PdftspConfig::default());
        let d = p.decide(&sc.tasks[0], &sc);
        assert_eq!(
            d.outcome,
            pdftsp_types::AuctionOutcome::Rejected(Rejection::NonPositiveSurplus)
        );
    }

    #[test]
    fn impossible_deadline_yields_no_feasible_schedule() {
        let t = TaskBuilder::new(0, 0, 0)
            .dataset(5000)
            .memory_gb(5.0)
            .bid(10.0)
            .rates(vec![1000])
            .build()
            .unwrap();
        let sc = scenario(vec![t], vec![vec![]], 4000);
        let mut p = Pdftsp::new(&sc, PdftspConfig::default());
        let d = p.decide(&sc.tasks[0], &sc);
        assert_eq!(
            d.outcome,
            pdftsp_types::AuctionOutcome::Rejected(Rejection::NoFeasibleSchedule)
        );
    }

    #[test]
    fn prices_rise_with_load_and_eventually_reject() {
        // Node fits exactly one task per slot (capacity = task rate); the
        // window has 8 slots so 4 two-slot tasks fill it; later tasks must
        // be priced out or capacity-rejected.
        let tasks: Vec<Task> = (0..8).map(|i| simple_task(i, 10.0)).collect();
        let quotes = vec![vec![]; 8];
        let sc = scenario(tasks, quotes, 1000);
        let mut p = Pdftsp::new(&sc, PdftspConfig::default());
        let mut admitted = 0;
        let mut rejected = 0;
        for t in &sc.tasks {
            if p.decide(t, &sc).is_admitted() {
                admitted += 1;
            } else {
                rejected += 1;
            }
        }
        assert!(admitted >= 3, "admitted {admitted}");
        assert!(rejected >= 3, "rejected {rejected}");
        // Committed capacity never exceeded (constraints 4f/4g).
        for t in 0..8 {
            assert!(p.ledger().compute_used(0, t) <= 1000);
        }
    }

    #[test]
    fn payments_never_exceed_bids_individual_rationality() {
        let tasks: Vec<Task> = (0..20).map(|i| simple_task(i, 5.0 + i as f64)).collect();
        let quotes = vec![vec![]; 20];
        let sc = scenario(tasks, quotes, 3000);
        let mut p = Pdftsp::new(&sc, PdftspConfig::default());
        for t in &sc.tasks {
            let d = p.decide(t, &sc);
            if d.is_admitted() {
                assert!(
                    d.payment() <= t.bid + 1e-9,
                    "payment {} > bid {}",
                    d.payment(),
                    t.bid
                );
            }
        }
    }

    #[test]
    fn vendor_with_best_surplus_is_selected() {
        // Tight deadline: the slow vendor (delay 5) leaves too little
        // room; the fast one (delay 1) must be chosen despite its price.
        let t = TaskBuilder::new(0, 0, 3)
            .dataset(2000)
            .memory_gb(5.0)
            .bid(20.0)
            .needs_preprocessing(true)
            .rates(vec![1000])
            .build()
            .unwrap();
        let quotes = vec![vec![
            VendorQuote {
                vendor: 0,
                price: 0.5,
                delay: 5,
            },
            VendorQuote {
                vendor: 1,
                price: 2.0,
                delay: 1,
            },
        ]];
        let sc = scenario(vec![t], quotes, 4000);
        let mut p = Pdftsp::new(&sc, PdftspConfig::default());
        let d = p.decide(&sc.tasks[0], &sc);
        assert!(d.is_admitted());
        assert_eq!(d.schedule().unwrap().vendor.vendor, 1);
        // Payment covers the vendor price plus 2 slots of energy even at
        // zero duals.
        assert!((d.payment() - 2.2).abs() < 1e-9);
    }

    #[test]
    fn cheap_vendor_wins_when_deadline_is_slack() {
        let t = TaskBuilder::new(0, 0, 7)
            .dataset(2000)
            .memory_gb(5.0)
            .bid(20.0)
            .needs_preprocessing(true)
            .rates(vec![1000])
            .build()
            .unwrap();
        let quotes = vec![vec![
            VendorQuote {
                vendor: 0,
                price: 0.5,
                delay: 3,
            },
            VendorQuote {
                vendor: 1,
                price: 2.0,
                delay: 1,
            },
        ]];
        let sc = scenario(vec![t], quotes, 4000);
        let mut p = Pdftsp::new(&sc, PdftspConfig::default());
        let d = p.decide(&sc.tasks[0], &sc);
        assert!(d.is_admitted());
        assert_eq!(d.schedule().unwrap().vendor.vendor, 0);
    }

    #[test]
    fn masking_policy_avoids_capacity_rejections() {
        let tasks: Vec<Task> = (0..8).map(|i| simple_task(i, 10.0)).collect();
        let quotes = vec![vec![]; 8];
        let sc = scenario(tasks, quotes, 1000);
        let cfg = PdftspConfig::default().with_masking();
        let mut p = Pdftsp::new(&sc, cfg);
        for t in &sc.tasks {
            let d = p.decide(t, &sc);
            // Masked DP never produces capacity-infeasible schedules.
            assert_ne!(
                d.outcome,
                pdftsp_types::AuctionOutcome::Rejected(Rejection::InsufficientCapacity)
            );
        }
    }

    #[test]
    fn records_mirror_decisions() {
        let sc = scenario(
            vec![simple_task(0, 10.0), simple_task(1, 0.05)],
            vec![vec![], vec![]],
            4000,
        );
        let mut p = Pdftsp::new(&sc, PdftspConfig::default());
        let refs: Vec<&Task> = sc.tasks.iter().collect();
        let out = p.on_slot(0, &refs, &sc);
        assert_eq!(out.len(), 2);
        let recs = p.records();
        assert_eq!(recs.len(), 2);
        assert!(recs[0].admitted && !recs[1].admitted);
        assert_eq!(recs[0].payment, out[0].payment());
    }

    #[test]
    fn telemetry_stream_and_counters_track_decisions() {
        use pdftsp_telemetry::RingSink;
        use std::sync::Arc;
        let sc = scenario(
            vec![simple_task(0, 10.0), simple_task(1, 0.05)],
            vec![vec![], vec![]],
            4000,
        );
        let ring = Arc::new(RingSink::new(256));
        let mut p =
            Pdftsp::with_telemetry(&sc, PdftspConfig::default(), Telemetry::new(ring.clone()));
        let d0 = p.decide(&sc.tasks[0], &sc);
        let d1 = p.decide(&sc.tasks[1], &sc);
        assert!(d0.is_admitted() && !d1.is_admitted());
        let c = &p.telemetry().counters;
        assert_eq!(c.read(&c.decisions), 2);
        assert_eq!(c.read(&c.admitted), 1);
        assert_eq!(c.read(&c.rejected_surplus), 1);
        assert_eq!(c.decide_latency.count(), 2);
        // Task 0 runs a DP; task 1 (bid 0.05) is discharged by the
        // admission bound without one — and says so in the stream.
        assert_eq!(c.read(&c.dp_runs), 1);
        assert_eq!(c.read(&c.vendors_pruned), 1);
        assert!(c.read(&c.grid_builds) >= 2);
        let events = ring.events();
        // Task 0: ArrivalSeen → DpRun → DualUpdate × placements → Admitted.
        assert_eq!(
            events[0],
            Event::ArrivalSeen {
                task: 0,
                slot: 0,
                bid: 10.0,
                vendors: 0
            }
        );
        let placements = d0.schedule().unwrap().placements.len();
        let dual_updates = events
            .iter()
            .filter(|e| matches!(e, Event::DualUpdate { task: 0, .. }))
            .count();
        assert_eq!(dual_updates, placements);
        assert_eq!(c.read(&c.dual_updates), placements as u64);
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::Admitted { task: 0, .. })));
        // Task 1: vendor-pruned (no DP), rejected for non-positive
        // surplus, no dual updates.
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::VendorPruned { task: 1, .. })));
        assert!(events.contains(&Event::Rejected {
            task: 1,
            reason: Reason::NonPositiveSurplus
        }));
        assert!(!events
            .iter()
            .any(|e| matches!(e, Event::DualUpdate { task: 1, .. })));
    }

    #[test]
    fn disabled_telemetry_still_counts() {
        let sc = scenario(vec![simple_task(0, 10.0)], vec![vec![]], 4000);
        let mut p = Pdftsp::new(&sc, PdftspConfig::default());
        assert!(!p.telemetry().is_enabled());
        p.decide(&sc.tasks[0], &sc);
        let c = &p.telemetry().counters;
        assert_eq!(c.read(&c.decisions), 1);
        assert_eq!(c.read(&c.admitted), 1);
        assert!(c.read(&c.dp_cells) > 0);
    }

    #[test]
    fn running_max_alpha_beta_grow() {
        let sc = scenario(
            vec![simple_task(0, 1.0), simple_task(1, 500.0)],
            vec![vec![], vec![]],
            4000,
        );
        let mut p = Pdftsp::new(&sc, PdftspConfig::default());
        p.decide(&sc.tasks[0], &sc);
        let a0 = p.alpha();
        p.decide(&sc.tasks[1], &sc);
        assert!(p.alpha() > a0);
        // β normalized by footprint r_i·ℓ_i = 5 GB × 2 slots = 10.
        assert!(p.beta() >= 500.0 / 10.0);
    }
}
