//! Algorithm 2's `findSchedule`: the dynamic program of Eqs. (12)–(13).
//!
//! For one task and one candidate start slot (`a_i + h_in` for a vendor
//! `n`), find the set of `(node, slot)` placements minimizing the
//! dual-priced cost
//!
//! ```text
//! Σ_(k,t)∈l ( s_ik·λ_kt + r_i·φ_kt + e_ikt )
//! ```
//!
//! subject to: total work ≥ `M_i`, at most one node per slot, all slots in
//! `[start, d_i]`. Following the paper's pseudocode (Algorithm 2 line 11)
//! the DP prices each slot with the *current per-slot* duals; the
//! admission value `F(il)` (Eq. 10) is then computed exactly with the
//! max-dual form by the caller.
//!
//! **Work quantization.** The DP's work axis is quantized to units of the
//! task's slowest compatible node rate (`u = min_k s_ik`), so the table
//! stays `O(window × slots-needed)`. Rates are rounded *down* to unit
//! multiples, which can only over-provision — a returned schedule always
//! delivers at least `M_i` true samples (checked in tests).
//!
//! **Two pipelines.** [`find_schedule_on_grid`] is the production path:
//! it slices a pre-built [`DeltaGrid`] by start offset, reuses the
//! [`DpBuffers`] arena across calls with no full-table clear, restricts
//! each DP row to the reachable work trapezoid, applies only the grid's
//! precomputed per-column Pareto-front candidates, and terminates early
//! once the running optimum meets the column-minima lower bound. The
//! value/choice tables live in a flat, slot-major, *padded* slab: each
//! row is `stride = cols.next_multiple_of(LANES)` wide so every row
//! starts lane-aligned and the [`crate::kernel`] min-plus row kernel
//! (scalar or `std::simd`, selected per arena) can run full-width vector
//! updates without straddling rows. [`find_schedule_reference`] is the
//! straight-line implementation kept as the equivalence oracle: both
//! produce bit-identical costs and placements (see the unit tests here
//! and `tests/pipeline_equivalence.rs` for the proofs-by-execution;
//! `tests/dp_kernel_equivalence.rs` additionally pins SIMD against
//! scalar).

use crate::duals::DualState;
use crate::grid::{DeltaGrid, LB_SLACK};
use crate::kernel::{self, KernelDispatch, KernelKind};
use pdftsp_cluster::CapacityLedger;
use pdftsp_telemetry::{Event, Telemetry};
use pdftsp_types::{NodeId, Scenario, Slot, Task};

/// Everything `find_schedule` consults.
#[derive(Clone, Copy)]
pub struct DpContext<'a> {
    /// The scenario (nodes, cost surface, base model size).
    pub scenario: &'a Scenario,
    /// Current dual prices `λ^{(i-1)}`, `φ^{(i-1)}`.
    pub duals: &'a DualState,
    /// When `Some`, `(k, t)` cells without residual capacity for the task
    /// are masked out of the DP ([`crate::config::CapacityPolicy::MaskSaturated`]).
    pub ledger: Option<&'a CapacityLedger>,
    /// Samples per compute pricing unit.
    pub compute_unit: f64,
    /// Observability hooks (`None` skips all emission and counting).
    pub telemetry: Option<&'a Telemetry>,
}

/// DP work accounting for one `findSchedule` invocation, summed over
/// refinement attempts so each invocation yields exactly one
/// [`Event::DpRun`] — the invariant the event-stream tests assert.
#[derive(Debug, Default, Clone, Copy)]
struct DpWork {
    rows: usize,
    cells: u64,
    early_exit: bool,
    /// Rows where at least one candidate update ran full SIMD lanes.
    simd_rows: u64,
    /// Rows where the SIMD kernel fell through to scalar tail cells.
    tail_rows: u64,
}

/// Counts and emits one completed `findSchedule` invocation. `fallback`
/// marks an invocation that wanted SIMD but ran the scalar kernel (build
/// without the `simd` feature).
fn record_dp_run(
    ctx: &DpContext<'_>,
    task: &Task,
    start: Slot,
    work: DpWork,
    feasible: bool,
    fallback: bool,
) {
    let Some(tel) = ctx.telemetry else { return };
    let c = &tel.counters;
    c.bump(&c.dp_runs, 1);
    c.bump(&c.dp_rows, work.rows as u64);
    c.bump(&c.dp_cells, work.cells);
    c.bump(&c.simd_rows, work.simd_rows);
    c.bump(&c.scalar_tail_rows, work.tail_rows);
    if fallback {
        c.bump(&c.fallback_dispatches, 1);
    }
    if work.early_exit {
        c.bump(&c.dp_early_exits, 1);
    }
    tel.emit(|| Event::DpRun {
        task: task.id,
        start,
        rows: work.rows,
        cells: work.cells,
        early_exit: work.early_exit,
        feasible,
    });
}

/// A schedule candidate produced by the DP.
#[derive(Debug, Clone, PartialEq)]
pub struct DpResult {
    /// Chosen `(node, slot)` placements, sorted by slot.
    pub placements: Vec<(NodeId, Slot)>,
    /// The DP objective: `Σ (s·λ + r·φ + e)` with `s` in pricing units.
    pub dp_cost: f64,
    /// The operational-cost component `Σ e_ikt` alone.
    pub energy: f64,
}

/// Reusable DP work area: table, choice matrix, quantized rates, and the
/// column-minima scratch used for pruning bounds.
///
/// All vectors keep their capacity across calls, so a warm scheduler's
/// per-arrival evaluation allocates only the output placements.
#[derive(Debug, Default)]
pub struct DpBuffers {
    /// The row kernel this arena dispatches (resolved once, not per call).
    kernel: KernelDispatch,
    /// Flat slot-major slab: `dp[t·stride + w]` = min cost to accumulate
    /// ≥ `w` units by row `t`, with `stride = cols` rounded up to
    /// [`kernel::LANES`] so every row starts lane-aligned. Padding cells
    /// `[cols, stride)` are never read or written by the sweep.
    dp: Vec<f64>,
    /// `choice[t·stride + w]`: 0 = idle this slot, `c+1` = run on node `c`.
    choice: Vec<u16>,
    /// Quantized per-node gains `s_ik / unit`.
    s_units: Vec<u64>,
    /// Ascending finite column minima of the active window.
    sorted_mins: Vec<f64>,
    /// `prefix[m]` = sum of the `m` cheapest column minima.
    prefix: Vec<f64>,
    /// Scratch for [`DeltaGrid::cost_lower_bound`] calls.
    pub(crate) col_scratch: Vec<f64>,
}

impl DpBuffers {
    /// An arena that dispatches the given row kernel.
    #[must_use]
    pub fn with_kernel(kernel: KernelDispatch) -> Self {
        Self {
            kernel,
            ..Self::default()
        }
    }

    /// Re-targets the arena's row kernel (takes effect next call).
    pub fn set_kernel(&mut self, kernel: KernelDispatch) {
        self.kernel = kernel;
    }

    /// The kernel this arena dispatches.
    #[must_use]
    pub fn kernel(&self) -> KernelDispatch {
        self.kernel
    }

    /// The raw value slab after the last DP call (diagnostic/test hook:
    /// the kernel-equivalence suite compares slabs bit-for-bit).
    #[must_use]
    pub fn table(&self) -> &[f64] {
        &self.dp
    }
}

/// Everything one scheduler instance reuses across arrivals: the shared
/// delta grid plus the DP arena.
#[derive(Debug, Default)]
pub struct EvalScratch {
    /// The per-arrival `(node, slot)` cost matrix.
    pub grid: DeltaGrid,
    /// The DP work area.
    pub bufs: DpBuffers,
}

impl EvalScratch {
    /// Scratch whose grid build and DP sweep both dispatch `kernel`.
    #[must_use]
    pub fn with_kernel(kernel: KernelDispatch) -> Self {
        let mut scratch = Self::default();
        scratch.bufs.set_kernel(kernel);
        scratch.grid.set_kernel(kernel.kind);
        scratch
    }
}

/// Runs `findSchedule` for `task` with execution window `[start, d_i]`.
///
/// Returns `None` when no placement set can deliver `M_i` by the deadline
/// (for the given capacity mask). This standalone entry builds a fresh
/// [`DeltaGrid`] per call; the scheduler hot path builds the grid once
/// per arrival and calls [`find_schedule_on_grid`] per vendor instead.
#[must_use]
pub fn find_schedule(ctx: &DpContext<'_>, task: &Task, start: Slot) -> Option<DpResult> {
    let mut scratch = EvalScratch::default();
    scratch.grid.build(ctx, task, start.min(task.arrival));
    find_schedule_on_grid(ctx, task, start, &scratch.grid, &mut scratch.bufs)
}

/// `findSchedule` over a pre-built [`DeltaGrid`], reusing `bufs`.
///
/// `grid` must have been built with `base ≤ start` for this task against
/// the same duals/ledger state. Tries a coarse work quantization first
/// and escalates to a fine one only when the coarse rounding loss makes a
/// tight task look infeasible — rare, so the common path stays cheap.
#[must_use]
pub fn find_schedule_on_grid(
    ctx: &DpContext<'_>,
    task: &Task,
    start: Slot,
    grid: &DeltaGrid,
    bufs: &mut DpBuffers,
) -> Option<DpResult> {
    if grid.is_unusable() || start > grid.deadline() || start < grid.base() {
        return None;
    }
    // Prefix sums of the window's ascending usable column minima:
    // `prefix[m]` lower-bounds any m-placement completion. Refinement-free
    // (deltas do not depend on the work quantization), so computed once.
    let off = start - grid.base();
    bufs.sorted_mins.clear();
    bufs.sorted_mins.extend(
        grid.col_min()[off..]
            .iter()
            .copied()
            .filter(|d| d.is_finite()),
    );
    bufs.sorted_mins.sort_unstable_by(|a, b| a.total_cmp(b));
    bufs.prefix.clear();
    bufs.prefix.push(0.0);
    let mut acc = 0.0;
    for &v in &bufs.sorted_mins {
        acc += v;
        bufs.prefix.push(acc);
    }
    let mut work = DpWork::default();
    let mut result = None;
    for refinement in [8u64, 64] {
        if let Some(r) = dp_on_grid(ctx, task, start, grid, bufs, refinement, &mut work) {
            result = Some(r);
            break;
        }
    }
    let feasible = result.is_some();
    record_dp_run(ctx, task, start, work, feasible, bufs.kernel.fallback);
    result
}

fn dp_on_grid(
    ctx: &DpContext<'_>,
    task: &Task,
    start: Slot,
    grid: &DeltaGrid,
    bufs: &mut DpBuffers,
    refinement: u64,
    work: &mut DpWork,
) -> Option<DpResult> {
    let off = start - grid.base();
    let window = grid.deadline() - start + 1;
    let unit = (grid.min_rate() / refinement).max(1);
    bufs.s_units.clear();
    bufs.s_units.extend(grid.rates().iter().map(|&r| r / unit));
    let w_target = task.work.div_ceil(unit) as usize;
    let max_per_slot = *bufs.s_units.iter().max().expect("non-empty") as usize;
    if max_per_slot * window < w_target {
        return None; // even running flat-out cannot finish
    }
    // Any completion needs ≥ ⌈w_target/max_per_slot⌉ placements in
    // distinct usable slots, each costing at least its column minimum.
    let m_q = w_target.div_ceil(max_per_slot);
    if m_q >= bufs.prefix.len() {
        return None; // fewer usable columns than placements needed
    }
    let lb_q = bufs.prefix[m_q] * LB_SLACK;

    let cols = w_target + 1;
    // Flat padded slab: rows are `stride` apart so each starts at a
    // multiple of the kernel lane width. The pad cells `[cols, stride)`
    // are never read or written — the sweep, the guard band, and the
    // reconstruction are all bounded by `w_target`.
    let stride = cols.next_multiple_of(kernel::LANES);
    let cells = (window + 1) * stride;
    // Buffers grow by capacity only — no full-table clear. Every cell the
    // sweep or the reconstruction reads is written first during *this*
    // call (the maintained trapezoid below plus its +∞ guard band), so
    // stale contents from earlier calls are never observed.
    if bufs.dp.len() < cells {
        bufs.dp.resize(cells, f64::INFINITY);
    }
    if bufs.choice.len() < cells {
        bufs.choice.resize(cells, 0);
    }
    // Row 0: only w = 0 is reachable; [1, min(mps, w_target)] is the guard
    // band row 1 may read past its own copy span.
    bufs.dp[0] = 0.0;
    for v in &mut bufs.dp[1..=max_per_slot.min(w_target)] {
        *v = f64::INFINITY;
    }

    // Row sweep over the reachable work *trapezoid*: row `t` maintains
    // exactly the columns that can still influence the target cell,
    //
    //   w_lo(t) = max(0, w_target − (window − t)·mps)   (the remaining
    //             rows can add at most (window − t)·mps units), and
    //   w_hi(t) = min(w_target, t·mps)                  (t rows can have
    //             accumulated at most t·mps units).
    //
    // Cells outside are either provably +∞ (above w_hi — the reference
    // agrees) or provably irrelevant (below w_lo: any path through them
    // can no longer reach w_target, and the reconstruction walk never
    // descends below w_target − (rows remaining)·mps ≥ w_lo). Each row
    // additionally writes an +∞ guard band of `mps` cells above w_hi so
    // the next row's reads `prev[w]`/`prev[w − gain]` (which reach at most
    // w_hi(t+1) ≤ w_hi(t) + mps) always land on initialized memory, and
    // keeps dp[t][0] = 0 live for the floor transition (idling is free;
    // the strict-< tie-break never displaces it, exactly as in the
    // reference). Candidate loops visit each cell's candidates in the
    // same ascending-node order (same strict-< tie-break) as the
    // reference's cell-major sweep, so maintained cells are bit-identical.
    // The per-column candidate fronts come precomputed from the grid
    // build; dropping a dominated node never changes a cell or a choice
    // tag (see the grid module docs), and the grid's raw-rate dominance
    // only ever keeps a superset of the quantized front.
    let kind = bufs.kernel.kind;
    let mut effective = window;
    for t_rel in 1..=window {
        let col = off + t_rel - 1;
        let w_hi = w_target.min(t_rel * max_per_slot);
        let w_lo = w_target.saturating_sub((window - t_rel) * max_per_slot);
        work.rows += 1;
        work.cells += (w_hi - w_lo + 1) as u64;
        let (prev_part, cur_part) = bufs.dp.split_at_mut(t_rel * stride);
        let prev = &prev_part[(t_rel - 1) * stride..];
        let cur = &mut cur_part[..stride];
        cur[w_lo..=w_hi].copy_from_slice(&prev[w_lo..=w_hi]);
        for v in &mut cur[w_hi + 1..=(w_hi + max_per_slot).min(w_target)] {
            *v = f64::INFINITY;
        }
        let crow = &mut bufs.choice[t_rel * stride..(t_rel + 1) * stride];
        for v in &mut crow[w_lo..=w_hi] {
            *v = 0;
        }
        if w_lo > 0 {
            cur[0] = 0.0;
            crow[0] = 0;
        }
        let front = grid.col_front(col);
        let mut row_lanes = 0u64;
        let mut row_tail = 0u64;
        for (i, &c) in front.nodes.iter().enumerate() {
            let c = c as usize;
            let gain = bufs.s_units[c] as usize;
            let (lanes, tail) = kernel::apply_candidate(
                kind,
                prev,
                cur,
                crow,
                w_lo,
                w_hi,
                gain,
                front.deltas[i],
                c as u16 + 1,
            );
            row_lanes += lanes;
            row_tail += tail;
        }
        if row_lanes > 0 {
            work.simd_rows += 1;
        }
        if kind == KernelKind::Simd && row_tail > 0 {
            work.tail_rows += 1;
        }
        // Early termination: once the target cell meets the lower bound no
        // later row can strictly improve it, so every remaining choice
        // cell on the reconstruction path stays 0 — identical output. The
        // target cell is only live once the trapezoid reaches it.
        if w_hi == w_target && cur[w_target] <= lb_q {
            effective = t_rel;
            work.early_exit = true;
            break;
        }
    }

    let final_cost = bufs.dp[effective * stride + w_target];
    if !final_cost.is_finite() {
        return None;
    }

    // Reconstruct. The walk starts at (effective, w_target) and loses at
    // most `mps` work units per row, so it stays inside each row's
    // maintained span [w_lo(t), w_hi(t)] (plus the explicitly zeroed
    // column 0) — never touching unmaintained cells.
    let mut placements = Vec::new();
    let mut w = w_target;
    for t_rel in (1..=effective).rev() {
        let c = bufs.choice[t_rel * stride + w];
        if c > 0 {
            let pos = (c - 1) as usize;
            placements.push((grid.compatible()[pos], start + t_rel - 1));
            w = w.saturating_sub(bufs.s_units[pos] as usize);
        }
    }
    placements.reverse();

    let energy = ctx.scenario.cost.total_e(task, placements.iter());
    Some(DpResult {
        placements,
        dp_cost: final_cost,
        energy,
    })
}

/// The straight-line `findSchedule` kept as the equivalence oracle for
/// the grid pipeline (and selectable via
/// [`crate::config::EvalPipeline::Reference`]).
#[must_use]
pub fn find_schedule_reference(ctx: &DpContext<'_>, task: &Task, start: Slot) -> Option<DpResult> {
    let mut work = DpWork::default();
    let mut result = None;
    for refinement in [8u64, 64] {
        if let Some(r) = find_schedule_quantized(ctx, task, start, refinement, &mut work) {
            result = Some(r);
            break;
        }
    }
    let feasible = result.is_some();
    record_dp_run(ctx, task, start, work, feasible, false);
    result
}

fn find_schedule_quantized(
    ctx: &DpContext<'_>,
    task: &Task,
    start: Slot,
    refinement: u64,
    work: &mut DpWork,
) -> Option<DpResult> {
    let scenario = ctx.scenario;
    let deadline = task.deadline.min(scenario.horizon.saturating_sub(1));
    if start > deadline {
        return None;
    }
    let window = deadline - start + 1;

    // Compatible nodes: positive rate and the adapter fits at all.
    let compatible: Vec<NodeId> = (0..scenario.nodes.len())
        .filter(|&k| task.rate(k) > 0 && task.memory_gb <= scenario.adapter_memory(k))
        .collect();
    if compatible.is_empty() {
        return None;
    }

    // Work quantization: refine below the slowest rate so that rounding
    // rates down to unit multiples loses at most 1/refinement of any
    // node's throughput (unit = min rate would lose up to half of a
    // faster node's rate and declare tight tasks infeasible).
    let min_rate = compatible
        .iter()
        .map(|&k| task.rate(k))
        .min()
        .expect("non-empty");
    let unit = (min_rate / refinement).max(1);
    let s_units: Vec<u64> = compatible.iter().map(|&k| task.rate(k) / unit).collect();
    let w_target = task.work.div_ceil(unit) as usize;
    let max_per_slot = *s_units.iter().max().expect("non-empty") as usize;
    if max_per_slot * window < w_target {
        return None; // even running flat-out cannot finish
    }

    // dp[t][w]: min cost to accumulate ≥ w units using slots start..start+t.
    let cols = w_target + 1;
    // The straight-line sweep touches every cell of every row.
    work.rows += window;
    work.cells += (window * cols) as u64;
    let mut dp = vec![f64::INFINITY; (window + 1) * cols];
    // choice[t][w]: 0 = idle this slot, c+1 = run on compatible[c].
    let mut choice = vec![0u16; (window + 1) * cols];
    dp[0] = 0.0; // dp[0][0]
    for v in &mut dp[1..cols] {
        *v = f64::INFINITY;
    }

    // Per-slot usable set and per-node slot cost Δ_kt. Without a capacity
    // mask every compatible node is usable in every slot, so the usable
    // set is hoisted out of the slot loop; the deltas depend on the slot's
    // duals and must be rebuilt per slot either way.
    let mut deltas: Vec<f64> = Vec::with_capacity(compatible.len());
    let mut usable: Vec<usize> = Vec::with_capacity(compatible.len());
    if ctx.ledger.is_none() {
        usable.extend(0..compatible.len());
    }
    for t_rel in 1..=window {
        let tt = start + t_rel - 1;
        let row = t_rel * cols;
        let prev = (t_rel - 1) * cols;
        if let Some(ledger) = ctx.ledger {
            usable.clear();
            for (c, &k) in compatible.iter().enumerate() {
                if ledger.fits(task, k, tt) {
                    usable.push(c);
                }
            }
        }
        deltas.clear();
        for &c in &usable {
            let k = compatible[c];
            let s_price = task.rate(k) as f64 / ctx.compute_unit;
            deltas.push(
                s_price * ctx.duals.lambda(k, tt)
                    + task.memory_gb * ctx.duals.phi(k, tt)
                    + scenario.cost.e(task, k, tt),
            );
        }
        for w in 0..cols {
            let mut best = dp[prev + w];
            let mut best_choice = 0u16;
            for (ui, &c) in usable.iter().enumerate() {
                let gain = s_units[c] as usize;
                let from = w.saturating_sub(gain);
                let cand = dp[prev + from] + deltas[ui];
                if cand < best {
                    best = cand;
                    best_choice = c as u16 + 1;
                }
            }
            dp[row + w] = best;
            choice[row + w] = best_choice;
        }
    }

    let final_cost = dp[window * cols + w_target];
    if !final_cost.is_finite() {
        return None;
    }

    // Reconstruct.
    let mut placements = Vec::new();
    let mut w = w_target;
    for t_rel in (1..=window).rev() {
        let c = choice[t_rel * cols + w];
        if c > 0 {
            let node_pos = (c - 1) as usize;
            let k = compatible[node_pos];
            placements.push((k, start + t_rel - 1));
            w = w.saturating_sub(s_units[node_pos] as usize);
        }
    }
    placements.reverse();

    let energy = scenario.cost.total_e(task, placements.iter());
    Some(DpResult {
        placements,
        dp_cost: final_cost,
        energy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdftsp_types::{CostGrid, GpuModel, NodeSpec, Schedule, TaskBuilder, VendorQuote};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn scenario_with_cost(prices: Vec<f64>, nodes: usize, horizon: usize) -> Scenario {
        let node_list = (0..nodes)
            .map(|k| NodeSpec::new(k, GpuModel::A100_80, 4000))
            .collect();
        Scenario {
            horizon,
            base_model_gb: 2.0,
            nodes: node_list,
            tasks: vec![],
            quotes: vec![],
            cost: CostGrid::from_vec(nodes, horizon, prices).unwrap(),
        }
    }

    fn task(work: u64, rates: Vec<u64>, deadline: usize) -> Task {
        TaskBuilder::new(0, 0, deadline)
            .dataset(work)
            .memory_gb(10.0)
            .bid(100.0)
            .rates(rates)
            .build()
            .unwrap()
    }

    fn ctx_parts(sc: &Scenario) -> DualState {
        DualState::new(sc, 1000.0)
    }

    #[test]
    fn picks_cheapest_slots() {
        // 1 node, 6 slots, needs 2 slots of work; slots 2 and 4 are cheap.
        let sc = scenario_with_cost(vec![5.0, 5.0, 1.0, 5.0, 1.0, 5.0], 1, 6);
        let t = task(2000, vec![1000], 5);
        let duals = ctx_parts(&sc);
        let ctx = DpContext {
            scenario: &sc,
            duals: &duals,
            ledger: None,
            compute_unit: 1000.0,
            telemetry: None,
        };
        let r = find_schedule(&ctx, &t, 0).unwrap();
        assert_eq!(r.placements, vec![(0, 2), (0, 4)]);
        assert!((r.energy - 2.0).abs() < 1e-12);
        assert!((r.dp_cost - 2.0).abs() < 1e-12);
    }

    #[test]
    fn respects_start_offset() {
        let sc = scenario_with_cost(vec![0.0; 6], 1, 6);
        let t = task(3000, vec![1000], 5);
        let duals = ctx_parts(&sc);
        let ctx = DpContext {
            scenario: &sc,
            duals: &duals,
            ledger: None,
            compute_unit: 1000.0,
            telemetry: None,
        };
        let r = find_schedule(&ctx, &t, 3).unwrap();
        assert!(r.placements.iter().all(|&(_, tt)| tt >= 3));
        assert_eq!(r.placements.len(), 3);
        // Start too late to finish → None.
        assert!(find_schedule(&ctx, &t, 4).is_none());
    }

    #[test]
    fn infeasible_when_window_too_small() {
        let sc = scenario_with_cost(vec![0.0; 4], 1, 4);
        let t = task(10_000, vec![1000], 3);
        let duals = ctx_parts(&sc);
        let ctx = DpContext {
            scenario: &sc,
            duals: &duals,
            ledger: None,
            compute_unit: 1000.0,
            telemetry: None,
        };
        assert!(find_schedule(&ctx, &t, 0).is_none());
    }

    #[test]
    fn prefers_fast_node_when_prices_are_equal() {
        // Node 1 twice as fast: finishing needs fewer slots → less energy.
        let sc = scenario_with_cost(vec![1.0; 12], 2, 6);
        let t = task(4000, vec![1000, 2000], 5);
        let duals = ctx_parts(&sc);
        let ctx = DpContext {
            scenario: &sc,
            duals: &duals,
            ledger: None,
            compute_unit: 1000.0,
            telemetry: None,
        };
        let r = find_schedule(&ctx, &t, 0).unwrap();
        assert_eq!(r.placements.len(), 2);
        assert!(r.placements.iter().all(|&(k, _)| k == 1));
    }

    #[test]
    fn avoids_highly_priced_cells() {
        let sc = scenario_with_cost(vec![0.0; 6], 1, 6);
        let t = task(2000, vec![1000], 5);
        let mut duals = ctx_parts(&sc);
        // Price slots 0 and 1 via a dummy update.
        let dummy = task(2000, vec![4000], 5);
        let s = Schedule::new(0, VendorQuote::none(), vec![(0, 0), (0, 1)]);
        duals.update(&dummy, &s, 1.0, 5.0, 5.0, 1000.0);
        let ctx = DpContext {
            scenario: &sc,
            duals: &duals,
            ledger: None,
            compute_unit: 1000.0,
            telemetry: None,
        };
        let r = find_schedule(&ctx, &t, 0).unwrap();
        assert!(
            r.placements.iter().all(|&(_, tt)| tt >= 2),
            "{:?}",
            r.placements
        );
    }

    #[test]
    fn masking_skips_saturated_cells() {
        let sc = scenario_with_cost(vec![0.0; 6], 1, 6);
        let t = task(2000, vec![1000], 5);
        let duals = ctx_parts(&sc);
        let mut ledger = CapacityLedger::new(&sc);
        // Saturate compute on slots 0..4 with a fat dummy task.
        let fat = task(4000, vec![4000], 5);
        let s = Schedule::new(0, VendorQuote::none(), vec![(0, 0), (0, 1), (0, 2), (0, 3)]);
        ledger.commit(&fat, &s).unwrap();
        let ctx = DpContext {
            scenario: &sc,
            duals: &duals,
            ledger: Some(&ledger),
            compute_unit: 1000.0,
            telemetry: None,
        };
        // Only slots 4, 5 remain → exactly fits the 2-slot task.
        let r = find_schedule(&ctx, &t, 0).unwrap();
        assert_eq!(r.placements, vec![(0, 4), (0, 5)]);
        // A 3-slot task no longer fits.
        let t3 = task(3000, vec![1000], 5);
        assert!(find_schedule(&ctx, &t3, 0).is_none());
    }

    #[test]
    fn delivered_work_always_meets_requirement() {
        // Heterogeneous rates not multiples of each other: quantization
        // must stay conservative.
        let sc = scenario_with_cost(vec![1.0; 24], 2, 12);
        for work in [1000u64, 1500, 2700, 5300, 9999] {
            let t = task(work, vec![700, 1900], 11);
            let duals = ctx_parts(&sc);
            let ctx = DpContext {
                scenario: &sc,
                duals: &duals,
                ledger: None,
                compute_unit: 1000.0,
                telemetry: None,
            };
            if let Some(r) = find_schedule(&ctx, &t, 0) {
                let delivered: u64 = r.placements.iter().map(|&(k, _)| t.rate(k)).sum();
                assert!(
                    delivered >= t.work,
                    "work {work}: delivered {delivered} < {}",
                    t.work
                );
            }
        }
    }

    /// Brute-force cross-check: enumerate every placement assignment on a
    /// tiny instance and compare optimal dp_cost.
    #[test]
    fn matches_brute_force_on_tiny_instances() {
        let prices = vec![3.0, 1.0, 2.0, 4.0, 2.0, 1.0, 1.5, 0.5]; // 2 nodes × 4 slots
        let sc = scenario_with_cost(prices, 2, 4);
        let t = task(2000, vec![1000, 1000], 3);
        let mut duals = ctx_parts(&sc);
        // Make duals non-trivial.
        let dummy = task(2000, vec![2000, 2000], 3);
        duals.update(
            &dummy,
            &Schedule::new(0, VendorQuote::none(), vec![(0, 1), (1, 2)]),
            1.3,
            2.0,
            2.0,
            1000.0,
        );
        let ctx = DpContext {
            scenario: &sc,
            duals: &duals,
            ledger: None,
            compute_unit: 1000.0,
            telemetry: None,
        };
        let got = find_schedule(&ctx, &t, 0).unwrap();

        // Brute force: per slot choose node 0, node 1, or idle (3^4).
        let mut best = f64::INFINITY;
        for mask in 0..81u32 {
            let mut m = mask;
            let mut work = 0u64;
            let mut cost = 0.0;
            for tt in 0..4usize {
                let c = m % 3;
                m /= 3;
                if c > 0 {
                    let k = (c - 1) as usize;
                    work += t.rate(k);
                    cost += t.rate(k) as f64 / 1000.0 * duals.lambda(k, tt)
                        + t.memory_gb * duals.phi(k, tt)
                        + sc.cost.e(&t, k, tt);
                }
            }
            if work >= t.work {
                best = best.min(cost);
            }
        }
        assert!(
            (got.dp_cost - best).abs() < 1e-9,
            "dp {} vs brute {best}",
            got.dp_cost
        );
    }

    #[test]
    fn incompatible_memory_rules_out_node() {
        let mut sc = scenario_with_cost(vec![0.0; 8], 2, 4);
        // Node 1 too small for the task's 10 GB adapter demand.
        sc.nodes[1].memory_gb = 11.0; // adapter space 11 − 2 = 9 < 10
        let t = task(2000, vec![1000, 1000], 3);
        let duals = DualState::new(&sc, 1000.0);
        let ctx = DpContext {
            scenario: &sc,
            duals: &duals,
            ledger: None,
            compute_unit: 1000.0,
            telemetry: None,
        };
        let r = find_schedule(&ctx, &t, 0).unwrap();
        assert!(r.placements.iter().all(|&(k, _)| k == 0));
    }

    /// Bit-equivalence of the grid pipeline against the reference on
    /// randomized instances: same feasibility, same placements, same
    /// (bit-identical) dp_cost and energy — with live duals, a capacity
    /// mask, heterogeneous rates, and nonzero start offsets.
    #[test]
    fn grid_pipeline_is_bit_identical_to_reference() {
        let mut scratch = EvalScratch::default();
        for case in 0..120u64 {
            let mut rng = StdRng::seed_from_u64(0x6B1D_0000 + case);
            let nodes = rng.gen_range(1usize..4);
            let horizon = rng.gen_range(4usize..16);
            let deadline = rng.gen_range(1usize..horizon + 3);
            let work = rng.gen_range(300u64..12_000);
            let rates: Vec<u64> = (0..nodes).map(|_| rng.gen_range(0u64..2_200)).collect();
            let prices: Vec<f64> = (0..nodes * horizon)
                .map(|_| rng.gen_range(0.0f64..3.0))
                .collect();
            let sc = scenario_with_cost(prices, nodes, horizon);
            let t = task(work, rates.clone(), deadline);
            let mut duals = DualState::new(&sc, 1000.0);
            // Warm the duals with a few synthetic commits.
            for u in 0..rng.gen_range(0usize..5) {
                let k = rng.gen_range(0usize..nodes);
                let tt = rng.gen_range(0usize..horizon);
                let dummy = task(1000, vec![1500; nodes], horizon - 1);
                let s = Schedule::new(u, VendorQuote::none(), vec![(k, tt)]);
                duals.update(&dummy, &s, rng.gen_range(0.5f64..2.0), 2.0, 2.0, 1000.0);
            }
            // Random partial ledger commits for the mask.
            let mut ledger = CapacityLedger::new(&sc);
            for u in 0..rng.gen_range(0usize..6) {
                let k = rng.gen_range(0usize..nodes);
                let tt = rng.gen_range(0usize..horizon);
                let r = rng.gen_range(500u64..4_000);
                let blocker = task(r, vec![r; nodes], horizon - 1);
                let s = Schedule::new(100 + u, VendorQuote::none(), vec![(k, tt)]);
                let _ = ledger.commit(&blocker, &s);
            }
            for (use_mask, start) in [
                (false, 0usize),
                (true, 0),
                (false, deadline.saturating_sub(2)),
                (true, rng.gen_range(0usize..deadline + 2)),
            ] {
                let ctx = DpContext {
                    scenario: &sc,
                    duals: &duals,
                    ledger: if use_mask { Some(&ledger) } else { None },
                    compute_unit: 1000.0,
                    telemetry: None,
                };
                let reference = find_schedule_reference(&ctx, &t, start);
                scratch.grid.build(&ctx, &t, start.min(t.arrival));
                let optimized =
                    find_schedule_on_grid(&ctx, &t, start, &scratch.grid, &mut scratch.bufs);
                match (&reference, &optimized) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        assert_eq!(a.placements, b.placements, "case {case} start {start}");
                        assert_eq!(
                            a.dp_cost.to_bits(),
                            b.dp_cost.to_bits(),
                            "case {case} start {start}: {} vs {}",
                            a.dp_cost,
                            b.dp_cost
                        );
                        assert_eq!(a.energy.to_bits(), b.energy.to_bits(), "case {case}");
                    }
                    _ => panic!(
                        "case {case} start {start} mask {use_mask}: feasibility diverged \
                         (reference {:?}, optimized {:?})",
                        reference.is_some(),
                        optimized.is_some()
                    ),
                }
            }
        }
    }

    /// The public `find_schedule` (fresh grid per call) agrees with the
    /// reference too — it is the same grid pipeline underneath.
    #[test]
    fn standalone_entry_matches_reference() {
        for case in 0..40u64 {
            let mut rng = StdRng::seed_from_u64(0x57A2_D000 + case);
            let horizon = rng.gen_range(4usize..12);
            let prices: Vec<f64> = (0..2 * horizon)
                .map(|_| rng.gen_range(0.0f64..2.0))
                .collect();
            let sc = scenario_with_cost(prices, 2, horizon);
            let t = task(
                rng.gen_range(500u64..8_000),
                vec![rng.gen_range(200u64..1500), rng.gen_range(200u64..1500)],
                rng.gen_range(1usize..horizon),
            );
            let duals = DualState::new(&sc, 1000.0);
            let ctx = DpContext {
                scenario: &sc,
                duals: &duals,
                ledger: None,
                compute_unit: 1000.0,
                telemetry: None,
            };
            let start = rng.gen_range(0usize..horizon);
            let a = find_schedule_reference(&ctx, &t, start);
            let b = find_schedule(&ctx, &t, start);
            assert_eq!(a, b, "case {case} start {start}");
        }
    }
}
