//! Algorithm 2's `findSchedule`: the dynamic program of Eqs. (12)–(13).
//!
//! For one task and one candidate start slot (`a_i + h_in` for a vendor
//! `n`), find the set of `(node, slot)` placements minimizing the
//! dual-priced cost
//!
//! ```text
//! Σ_(k,t)∈l ( s_ik·λ_kt + r_i·φ_kt + e_ikt )
//! ```
//!
//! subject to: total work ≥ `M_i`, at most one node per slot, all slots in
//! `[start, d_i]`. Following the paper's pseudocode (Algorithm 2 line 11)
//! the DP prices each slot with the *current per-slot* duals; the
//! admission value `F(il)` (Eq. 10) is then computed exactly with the
//! max-dual form by the caller.
//!
//! **Work quantization.** The DP's work axis is quantized to units of the
//! task's slowest compatible node rate (`u = min_k s_ik`), so the table
//! stays `O(window × slots-needed)`. Rates are rounded *down* to unit
//! multiples, which can only over-provision — a returned schedule always
//! delivers at least `M_i` true samples (checked in tests).

use crate::duals::DualState;
use pdftsp_cluster::CapacityLedger;
use pdftsp_types::{NodeId, Scenario, Slot, Task};

/// Everything `find_schedule` consults.
#[derive(Clone, Copy)]
pub struct DpContext<'a> {
    /// The scenario (nodes, cost surface, base model size).
    pub scenario: &'a Scenario,
    /// Current dual prices `λ^{(i-1)}`, `φ^{(i-1)}`.
    pub duals: &'a DualState,
    /// When `Some`, `(k, t)` cells without residual capacity for the task
    /// are masked out of the DP ([`crate::config::CapacityPolicy::MaskSaturated`]).
    pub ledger: Option<&'a CapacityLedger>,
    /// Samples per compute pricing unit.
    pub compute_unit: f64,
}

/// A schedule candidate produced by the DP.
#[derive(Debug, Clone, PartialEq)]
pub struct DpResult {
    /// Chosen `(node, slot)` placements, sorted by slot.
    pub placements: Vec<(NodeId, Slot)>,
    /// The DP objective: `Σ (s·λ + r·φ + e)` with `s` in pricing units.
    pub dp_cost: f64,
    /// The operational-cost component `Σ e_ikt` alone.
    pub energy: f64,
}

/// Runs `findSchedule` for `task` with execution window `[start, d_i]`.
///
/// Returns `None` when no placement set can deliver `M_i` by the deadline
/// (for the given capacity mask). Tries a coarse work quantization first
/// and escalates to a fine one only when the coarse rounding loss makes a
/// tight task look infeasible — rare, so the common path stays cheap.
#[must_use]
pub fn find_schedule(ctx: &DpContext<'_>, task: &Task, start: Slot) -> Option<DpResult> {
    for refinement in [8u64, 64] {
        if let Some(r) = find_schedule_quantized(ctx, task, start, refinement) {
            return Some(r);
        }
    }
    None
}

fn find_schedule_quantized(
    ctx: &DpContext<'_>,
    task: &Task,
    start: Slot,
    refinement: u64,
) -> Option<DpResult> {
    let scenario = ctx.scenario;
    let deadline = task.deadline.min(scenario.horizon.saturating_sub(1));
    if start > deadline {
        return None;
    }
    let window = deadline - start + 1;

    // Compatible nodes: positive rate and the adapter fits at all.
    let compatible: Vec<NodeId> = (0..scenario.nodes.len())
        .filter(|&k| task.rate(k) > 0 && task.memory_gb <= scenario.adapter_memory(k))
        .collect();
    if compatible.is_empty() {
        return None;
    }

    // Work quantization: refine below the slowest rate so that rounding
    // rates down to unit multiples loses at most 1/refinement of any
    // node's throughput (unit = min rate would lose up to half of a
    // faster node's rate and declare tight tasks infeasible).
    let min_rate = compatible
        .iter()
        .map(|&k| task.rate(k))
        .min()
        .expect("non-empty");
    let unit = (min_rate / refinement).max(1);
    let s_units: Vec<u64> = compatible.iter().map(|&k| task.rate(k) / unit).collect();
    let w_target = task.work.div_ceil(unit) as usize;
    let max_per_slot = *s_units.iter().max().expect("non-empty") as usize;
    if max_per_slot * window < w_target {
        return None; // even running flat-out cannot finish
    }

    // dp[t][w]: min cost to accumulate ≥ w units using slots start..start+t.
    let cols = w_target + 1;
    let mut dp = vec![f64::INFINITY; (window + 1) * cols];
    // choice[t][w]: 0 = idle this slot, c+1 = run on compatible[c].
    let mut choice = vec![0u16; (window + 1) * cols];
    dp[0] = 0.0; // dp[0][0]
    for w in 1..cols {
        dp[w] = f64::INFINITY;
    }

    for t_rel in 1..=window {
        let tt = start + t_rel - 1;
        let row = t_rel * cols;
        let prev = (t_rel - 1) * cols;
        // Per-node slot cost Δ_kt, masked where capacity is absent.
        // Smallvec-free: iterate compatible nodes inline per cell.
        let mut deltas = [0.0f64; 0].to_vec();
        deltas.reserve(compatible.len());
        let mut usable = Vec::with_capacity(compatible.len());
        for (c, &k) in compatible.iter().enumerate() {
            if let Some(ledger) = ctx.ledger {
                if !ledger.fits(task, k, tt) {
                    continue;
                }
            }
            let s_price = task.rate(k) as f64 / ctx.compute_unit;
            let delta = s_price * ctx.duals.lambda(k, tt)
                + task.memory_gb * ctx.duals.phi(k, tt)
                + scenario.cost.e(task, k, tt);
            usable.push(c);
            deltas.push(delta);
        }
        for w in 0..cols {
            let mut best = dp[prev + w];
            let mut best_choice = 0u16;
            for (ui, &c) in usable.iter().enumerate() {
                let gain = s_units[c] as usize;
                let from = w.saturating_sub(gain);
                let cand = dp[prev + from] + deltas[ui];
                if cand < best {
                    best = cand;
                    best_choice = c as u16 + 1;
                }
            }
            dp[row + w] = best;
            choice[row + w] = best_choice;
        }
    }

    let final_cost = dp[window * cols + w_target];
    if !final_cost.is_finite() {
        return None;
    }

    // Reconstruct.
    let mut placements = Vec::new();
    let mut w = w_target;
    for t_rel in (1..=window).rev() {
        let c = choice[t_rel * cols + w];
        if c > 0 {
            let node_pos = (c - 1) as usize;
            let k = compatible[node_pos];
            placements.push((k, start + t_rel - 1));
            w = w.saturating_sub(s_units[node_pos] as usize);
        }
    }
    placements.reverse();

    let energy = scenario.cost.total_e(task, placements.iter());
    Some(DpResult {
        placements,
        dp_cost: final_cost,
        energy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdftsp_types::{CostGrid, GpuModel, NodeSpec, Schedule, TaskBuilder, VendorQuote};

    fn scenario_with_cost(prices: Vec<f64>, nodes: usize, horizon: usize) -> Scenario {
        let node_list = (0..nodes)
            .map(|k| NodeSpec::new(k, GpuModel::A100_80, 4000))
            .collect();
        Scenario {
            horizon,
            base_model_gb: 2.0,
            nodes: node_list,
            tasks: vec![],
            quotes: vec![],
            cost: CostGrid::from_vec(nodes, horizon, prices).unwrap(),
        }
    }

    fn task(work: u64, rates: Vec<u64>, deadline: usize) -> Task {
        TaskBuilder::new(0, 0, deadline)
            .dataset(work)
            .memory_gb(10.0)
            .bid(100.0)
            .rates(rates)
            .build()
            .unwrap()
    }

    fn ctx_parts(sc: &Scenario) -> DualState {
        DualState::new(sc, 1000.0)
    }

    #[test]
    fn picks_cheapest_slots() {
        // 1 node, 6 slots, needs 2 slots of work; slots 2 and 4 are cheap.
        let sc = scenario_with_cost(vec![5.0, 5.0, 1.0, 5.0, 1.0, 5.0], 1, 6);
        let t = task(2000, vec![1000], 5);
        let duals = ctx_parts(&sc);
        let ctx = DpContext {
            scenario: &sc,
            duals: &duals,
            ledger: None,
            compute_unit: 1000.0,
        };
        let r = find_schedule(&ctx, &t, 0).unwrap();
        assert_eq!(r.placements, vec![(0, 2), (0, 4)]);
        assert!((r.energy - 2.0).abs() < 1e-12);
        assert!((r.dp_cost - 2.0).abs() < 1e-12);
    }

    #[test]
    fn respects_start_offset() {
        let sc = scenario_with_cost(vec![0.0; 6], 1, 6);
        let t = task(3000, vec![1000], 5);
        let duals = ctx_parts(&sc);
        let ctx = DpContext {
            scenario: &sc,
            duals: &duals,
            ledger: None,
            compute_unit: 1000.0,
        };
        let r = find_schedule(&ctx, &t, 3).unwrap();
        assert!(r.placements.iter().all(|&(_, tt)| tt >= 3));
        assert_eq!(r.placements.len(), 3);
        // Start too late to finish → None.
        assert!(find_schedule(&ctx, &t, 4).is_none());
    }

    #[test]
    fn infeasible_when_window_too_small() {
        let sc = scenario_with_cost(vec![0.0; 4], 1, 4);
        let t = task(10_000, vec![1000], 3);
        let duals = ctx_parts(&sc);
        let ctx = DpContext {
            scenario: &sc,
            duals: &duals,
            ledger: None,
            compute_unit: 1000.0,
        };
        assert!(find_schedule(&ctx, &t, 0).is_none());
    }

    #[test]
    fn prefers_fast_node_when_prices_are_equal() {
        // Node 1 twice as fast: finishing needs fewer slots → less energy.
        let sc = scenario_with_cost(vec![1.0; 12], 2, 6);
        let t = task(4000, vec![1000, 2000], 5);
        let duals = ctx_parts(&sc);
        let ctx = DpContext {
            scenario: &sc,
            duals: &duals,
            ledger: None,
            compute_unit: 1000.0,
        };
        let r = find_schedule(&ctx, &t, 0).unwrap();
        assert_eq!(r.placements.len(), 2);
        assert!(r.placements.iter().all(|&(k, _)| k == 1));
    }

    #[test]
    fn avoids_highly_priced_cells() {
        let sc = scenario_with_cost(vec![0.0; 6], 1, 6);
        let t = task(2000, vec![1000], 5);
        let mut duals = ctx_parts(&sc);
        // Price slots 0 and 1 via a dummy update.
        let dummy = task(2000, vec![4000], 5);
        let s = Schedule::new(0, VendorQuote::none(), vec![(0, 0), (0, 1)]);
        duals.update(&dummy, &s, 1.0, 5.0, 5.0, 1000.0);
        let ctx = DpContext {
            scenario: &sc,
            duals: &duals,
            ledger: None,
            compute_unit: 1000.0,
        };
        let r = find_schedule(&ctx, &t, 0).unwrap();
        assert!(
            r.placements.iter().all(|&(_, tt)| tt >= 2),
            "{:?}",
            r.placements
        );
    }

    #[test]
    fn masking_skips_saturated_cells() {
        let sc = scenario_with_cost(vec![0.0; 6], 1, 6);
        let t = task(2000, vec![1000], 5);
        let duals = ctx_parts(&sc);
        let mut ledger = CapacityLedger::new(&sc);
        // Saturate compute on slots 0..4 with a fat dummy task.
        let fat = task(4000, vec![4000], 5);
        let s = Schedule::new(
            0,
            VendorQuote::none(),
            vec![(0, 0), (0, 1), (0, 2), (0, 3)],
        );
        ledger.commit(&fat, &s).unwrap();
        let ctx = DpContext {
            scenario: &sc,
            duals: &duals,
            ledger: Some(&ledger),
            compute_unit: 1000.0,
        };
        // Only slots 4, 5 remain → exactly fits the 2-slot task.
        let r = find_schedule(&ctx, &t, 0).unwrap();
        assert_eq!(r.placements, vec![(0, 4), (0, 5)]);
        // A 3-slot task no longer fits.
        let t3 = task(3000, vec![1000], 5);
        assert!(find_schedule(&ctx, &t3, 0).is_none());
    }

    #[test]
    fn delivered_work_always_meets_requirement() {
        // Heterogeneous rates not multiples of each other: quantization
        // must stay conservative.
        let sc = scenario_with_cost(vec![1.0; 24], 2, 12);
        for work in [1000u64, 1500, 2700, 5300, 9999] {
            let t = task(work, vec![700, 1900], 11);
            let duals = ctx_parts(&sc);
            let ctx = DpContext {
                scenario: &sc,
                duals: &duals,
                ledger: None,
                compute_unit: 1000.0,
            };
            if let Some(r) = find_schedule(&ctx, &t, 0) {
                let delivered: u64 = r.placements.iter().map(|&(k, _)| t.rate(k)).sum();
                assert!(
                    delivered >= t.work,
                    "work {work}: delivered {delivered} < {}",
                    t.work
                );
            }
        }
    }

    /// Brute-force cross-check: enumerate every placement assignment on a
    /// tiny instance and compare optimal dp_cost.
    #[test]
    fn matches_brute_force_on_tiny_instances() {
        let prices = vec![3.0, 1.0, 2.0, 4.0, 2.0, 1.0, 1.5, 0.5]; // 2 nodes × 4 slots
        let sc = scenario_with_cost(prices, 2, 4);
        let t = task(2000, vec![1000, 1000], 3);
        let mut duals = ctx_parts(&sc);
        // Make duals non-trivial.
        let dummy = task(2000, vec![2000, 2000], 3);
        duals.update(
            &dummy,
            &Schedule::new(0, VendorQuote::none(), vec![(0, 1), (1, 2)]),
            1.3,
            2.0,
            2.0,
            1000.0,
        );
        let ctx = DpContext {
            scenario: &sc,
            duals: &duals,
            ledger: None,
            compute_unit: 1000.0,
        };
        let got = find_schedule(&ctx, &t, 0).unwrap();

        // Brute force: per slot choose node 0, node 1, or idle (3^4).
        let mut best = f64::INFINITY;
        for mask in 0..81u32 {
            let mut m = mask;
            let mut work = 0u64;
            let mut cost = 0.0;
            for tt in 0..4usize {
                let c = m % 3;
                m /= 3;
                if c > 0 {
                    let k = (c - 1) as usize;
                    work += t.rate(k);
                    cost += t.rate(k) as f64 / 1000.0 * duals.lambda(k, tt)
                        + t.memory_gb * duals.phi(k, tt)
                        + sc.cost.e(&t, k, tt);
                }
            }
            if work >= t.work {
                best = best.min(cost);
            }
        }
        assert!(
            (got.dp_cost - best).abs() < 1e-9,
            "dp {} vs brute {best}",
            got.dp_cost
        );
    }

    #[test]
    fn incompatible_memory_rules_out_node() {
        let mut sc = scenario_with_cost(vec![0.0; 8], 2, 4);
        // Node 1 too small for the task's 10 GB adapter demand.
        sc.nodes[1].memory_gb = 11.0; // adapter space 11 − 2 = 9 < 10
        let t = task(2000, vec![1000, 1000], 3);
        let duals = DualState::new(&sc, 1000.0);
        let ctx = DpContext {
            scenario: &sc,
            duals: &duals,
            ledger: None,
            compute_unit: 1000.0,
        };
        let r = find_schedule(&ctx, &t, 0).unwrap();
        assert!(r.placements.iter().all(|&(k, _)| k == 0));
    }
}
