//! [`RunReport`]: the single aggregate summary of one run.
//!
//! A report is assembled from three sources, in increasing specificity:
//!
//! 1. [`RunReport::from_counters`] — the always-on [`Counters`] of an
//!    instrumented scheduler (prune/DP-work tallies, bucketed latency);
//! 2. [`RunReport::with_exact_latency`] — exact decide-latency
//!    percentiles from per-decision wall-clock samples, replacing the
//!    √2-resolution histogram estimates;
//! 3. [`RunReport::with_utilization`] — cluster utilization/co-location
//!    from the post-run ledger replay (`ClusterMetrics` routes here).
//!
//! Uninstrumented schedulers (the baselines) fill the decision tallies
//! through [`RunReport::tally_admitted`] / [`RunReport::tally_rejected`]
//! and leave the DP-work block at zero.

use crate::counters::Counters;
use crate::event::Reason;
use std::fmt::Write as _;

/// Cluster utilization and co-location figures, normalized out of
/// `pdftsp_cluster::ClusterMetrics` so the report stays dependency-free.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UtilizationSummary {
    /// Mean compute utilization over all `(k, t)` cells, `[0, 1]`.
    pub mean_compute: f64,
    /// Peak compute utilization over cells.
    pub peak_compute: f64,
    /// Mean adapter-memory utilization over cells, `[0, 1]`.
    pub mean_memory: f64,
    /// Maximum tasks co-located on one cell (multi-LoRA sharing degree).
    pub peak_colocation: usize,
    /// Mean co-located tasks over busy cells.
    pub mean_colocation_busy: f64,
}

/// Decide-latency percentiles in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Samples observed.
    pub count: u64,
    /// Median.
    pub p50_nanos: f64,
    /// 95th percentile.
    pub p95_nanos: f64,
    /// 99th percentile.
    pub p99_nanos: f64,
    /// Mean.
    pub mean_nanos: f64,
    /// Maximum.
    pub max_nanos: f64,
    /// `true` when computed from exact per-decision samples, `false` when
    /// estimated from the log₂ histogram (within √2×).
    pub exact: bool,
}

/// Aggregate summary of one scheduler run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// Scheduler name (e.g. `"pdFTSP"`).
    pub scheduler: String,
    /// Total decisions (arrivals processed).
    pub decisions: u64,
    /// Admitted tasks.
    pub admitted: u64,
    /// Rejected: no feasible schedule.
    pub rejected_infeasible: u64,
    /// Rejected: non-positive surplus.
    pub rejected_surplus: u64,
    /// Rejected: insufficient residual capacity.
    pub rejected_capacity: u64,
    /// Vendor quotes examined.
    pub vendors_seen: u64,
    /// Quotes discharged by the delta-grid bound without a DP run.
    pub vendors_pruned: u64,
    /// Quotes discharged by the start-slot memo.
    pub vendors_memoized: u64,
    /// Fraction of examined quotes discharged without a DP run.
    pub prune_hit_rate: f64,
    /// `findSchedule` DP invocations.
    pub dp_runs: u64,
    /// DP rows swept.
    pub dp_rows: u64,
    /// DP cells touched.
    pub dp_cells: u64,
    /// DP runs whose early exit fired.
    pub dp_early_exits: u64,
    /// DP rows where at least one candidate update ran full SIMD lanes.
    pub simd_rows: u64,
    /// DP rows where the SIMD kernel fell through to scalar tail cells.
    pub scalar_tail_rows: u64,
    /// DP invocations that wanted SIMD but ran the scalar kernel.
    pub fallback_dispatches: u64,
    /// Mean DP cells per decision.
    pub dp_cells_per_decision: f64,
    /// Shared delta grids built.
    pub grid_builds: u64,
    /// Cells materialized across delta grids.
    pub grid_cells: u64,
    /// Individual `(k, t)` dual-price updates applied.
    pub dual_updates: u64,
    /// Decide-call latency percentiles.
    pub latency: LatencySummary,
    /// Worker-pool tasks executed during the run (batch items plus
    /// spawned jobs) — 0 when no pool snapshot was attached.
    pub pool_tasks: u64,
    /// Nanoseconds pool threads spent parked (idle) during the run.
    pub pool_park_ns: u64,
    /// Epochs that consumed a pre-spawned pipelined proposal (service
    /// runs only; 0 otherwise).
    pub epochs_overlapped: u64,
    /// Cluster utilization, when a post-run replay is available.
    pub utilization: Option<UtilizationSummary>,
}

impl RunReport {
    /// A report seeded from an instrumented scheduler's counters.
    #[must_use]
    pub fn from_counters(scheduler: impl Into<String>, c: &Counters) -> Self {
        let h = &c.decide_latency;
        RunReport {
            scheduler: scheduler.into(),
            decisions: c.read(&c.decisions),
            admitted: c.read(&c.admitted),
            rejected_infeasible: c.read(&c.rejected_infeasible),
            rejected_surplus: c.read(&c.rejected_surplus),
            rejected_capacity: c.read(&c.rejected_capacity),
            vendors_seen: c.read(&c.vendors_seen),
            vendors_pruned: c.read(&c.vendors_pruned),
            vendors_memoized: c.read(&c.vendors_memoized),
            prune_hit_rate: c.prune_hit_rate(),
            dp_runs: c.read(&c.dp_runs),
            dp_rows: c.read(&c.dp_rows),
            dp_cells: c.read(&c.dp_cells),
            dp_early_exits: c.read(&c.dp_early_exits),
            simd_rows: c.read(&c.simd_rows),
            scalar_tail_rows: c.read(&c.scalar_tail_rows),
            fallback_dispatches: c.read(&c.fallback_dispatches),
            dp_cells_per_decision: c.dp_cells_per_decision(),
            grid_builds: c.read(&c.grid_builds),
            grid_cells: c.read(&c.grid_cells),
            dual_updates: c.read(&c.dual_updates),
            latency: LatencySummary {
                count: h.count(),
                p50_nanos: h.quantile_nanos(0.50),
                p95_nanos: h.quantile_nanos(0.95),
                p99_nanos: h.quantile_nanos(0.99),
                mean_nanos: h.mean_nanos(),
                max_nanos: h.max_nanos() as f64,
                exact: false,
            },
            pool_tasks: 0,
            pool_park_ns: 0,
            epochs_overlapped: 0,
            utilization: None,
        }
    }

    /// An empty report for an uninstrumented scheduler; fill the decision
    /// tallies with [`RunReport::tally_admitted`] /
    /// [`RunReport::tally_rejected`].
    #[must_use]
    pub fn named(scheduler: impl Into<String>) -> Self {
        RunReport {
            scheduler: scheduler.into(),
            ..RunReport::default()
        }
    }

    /// Counts one admitted decision.
    pub fn tally_admitted(&mut self) {
        self.decisions += 1;
        self.admitted += 1;
    }

    /// Counts one rejected decision.
    pub fn tally_rejected(&mut self, reason: Reason) {
        self.decisions += 1;
        match reason {
            Reason::NoFeasibleSchedule => self.rejected_infeasible += 1,
            Reason::NonPositiveSurplus => self.rejected_surplus += 1,
            Reason::InsufficientCapacity => self.rejected_capacity += 1,
        }
    }

    /// Total rejected decisions across all reasons.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected_infeasible + self.rejected_surplus + self.rejected_capacity
    }

    /// Replaces the latency block with exact percentiles computed from
    /// per-decision wall-clock samples in **seconds** (the unit of
    /// `Decision::decide_seconds`). Non-finite samples are dropped.
    #[must_use]
    pub fn with_exact_latency(mut self, samples_seconds: &[f64]) -> Self {
        let mut nanos: Vec<f64> = samples_seconds
            .iter()
            .filter(|s| s.is_finite())
            .map(|s| (s * 1e9).max(0.0))
            .collect();
        if nanos.is_empty() {
            return self;
        }
        nanos.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let pick = |q: f64| {
            let rank = ((q * nanos.len() as f64).ceil() as usize).clamp(1, nanos.len());
            nanos[rank - 1]
        };
        self.latency = LatencySummary {
            count: nanos.len() as u64,
            p50_nanos: pick(0.50),
            p95_nanos: pick(0.95),
            p99_nanos: pick(0.99),
            mean_nanos: nanos.iter().sum::<f64>() / nanos.len() as f64,
            max_nanos: *nanos.last().expect("non-empty"),
            exact: true,
        };
        self
    }

    /// Attaches cluster utilization from the post-run replay.
    #[must_use]
    pub fn with_utilization(mut self, utilization: UtilizationSummary) -> Self {
        self.utilization = Some(utilization);
        self
    }

    /// Attaches worker-pool / pipeline counters: tasks executed, park
    /// (idle) nanoseconds, and epochs that overlapped a pre-spawned
    /// proposal. Callers compute the run's delta from process-global
    /// pool snapshots before handing it here.
    #[must_use]
    pub fn with_pool(mut self, tasks: u64, park_ns: u64, epochs_overlapped: u64) -> Self {
        self.pool_tasks = tasks;
        self.pool_park_ns = park_ns;
        self.epochs_overlapped = epochs_overlapped;
        self
    }

    /// The report as one pretty-printed JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        let _ = writeln!(s, "  \"scheduler\": \"{}\",", self.scheduler);
        let _ = writeln!(s, "  \"decisions\": {},", self.decisions);
        let _ = writeln!(s, "  \"admitted\": {},", self.admitted);
        let _ = writeln!(s, "  \"rejected\": {},", self.rejected());
        let _ = writeln!(
            s,
            "  \"rejected_infeasible\": {},",
            self.rejected_infeasible
        );
        let _ = writeln!(s, "  \"rejected_surplus\": {},", self.rejected_surplus);
        let _ = writeln!(s, "  \"rejected_capacity\": {},", self.rejected_capacity);
        let _ = writeln!(s, "  \"vendors_seen\": {},", self.vendors_seen);
        let _ = writeln!(s, "  \"vendors_pruned\": {},", self.vendors_pruned);
        let _ = writeln!(s, "  \"vendors_memoized\": {},", self.vendors_memoized);
        let _ = writeln!(s, "  \"prune_hit_rate\": {:?},", self.prune_hit_rate);
        let _ = writeln!(s, "  \"dp_runs\": {},", self.dp_runs);
        let _ = writeln!(s, "  \"dp_rows\": {},", self.dp_rows);
        let _ = writeln!(s, "  \"dp_cells\": {},", self.dp_cells);
        let _ = writeln!(s, "  \"dp_early_exits\": {},", self.dp_early_exits);
        let _ = writeln!(s, "  \"simd_rows\": {},", self.simd_rows);
        let _ = writeln!(s, "  \"scalar_tail_rows\": {},", self.scalar_tail_rows);
        let _ = writeln!(
            s,
            "  \"fallback_dispatches\": {},",
            self.fallback_dispatches
        );
        let _ = writeln!(
            s,
            "  \"dp_cells_per_decision\": {:?},",
            self.dp_cells_per_decision
        );
        let _ = writeln!(s, "  \"grid_builds\": {},", self.grid_builds);
        let _ = writeln!(s, "  \"grid_cells\": {},", self.grid_cells);
        let _ = writeln!(s, "  \"dual_updates\": {},", self.dual_updates);
        let _ = writeln!(s, "  \"pool_tasks\": {},", self.pool_tasks);
        let _ = writeln!(s, "  \"pool_park_ns\": {},", self.pool_park_ns);
        let _ = writeln!(s, "  \"epochs_overlapped\": {},", self.epochs_overlapped);
        let _ = writeln!(s, "  \"latency\": {{");
        let _ = writeln!(s, "    \"count\": {},", self.latency.count);
        let _ = writeln!(s, "    \"p50_nanos\": {:?},", self.latency.p50_nanos);
        let _ = writeln!(s, "    \"p95_nanos\": {:?},", self.latency.p95_nanos);
        let _ = writeln!(s, "    \"p99_nanos\": {:?},", self.latency.p99_nanos);
        let _ = writeln!(s, "    \"mean_nanos\": {:?},", self.latency.mean_nanos);
        let _ = writeln!(s, "    \"max_nanos\": {:?},", self.latency.max_nanos);
        let _ = writeln!(s, "    \"exact\": {}", self.latency.exact);
        match &self.utilization {
            None => {
                let _ = writeln!(s, "  }}");
            }
            Some(u) => {
                let _ = writeln!(s, "  }},");
                let _ = writeln!(s, "  \"utilization\": {{");
                let _ = writeln!(s, "    \"mean_compute\": {:?},", u.mean_compute);
                let _ = writeln!(s, "    \"peak_compute\": {:?},", u.peak_compute);
                let _ = writeln!(s, "    \"mean_memory\": {:?},", u.mean_memory);
                let _ = writeln!(s, "    \"peak_colocation\": {},", u.peak_colocation);
                let _ = writeln!(
                    s,
                    "    \"mean_colocation_busy\": {:?}",
                    u.mean_colocation_busy
                );
                let _ = writeln!(s, "  }}");
            }
        }
        s.push('}');
        s
    }

    /// A short human-readable rendering for terminal output.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut s = String::with_capacity(512);
        let _ = writeln!(s, "run report — {}", self.scheduler);
        let _ = writeln!(
            s,
            "  decisions: {} (admitted {}, rejected {})",
            self.decisions,
            self.admitted,
            self.rejected()
        );
        let _ = writeln!(
            s,
            "    rejected by reason: infeasible {}, surplus {}, capacity {}",
            self.rejected_infeasible, self.rejected_surplus, self.rejected_capacity
        );
        let _ = writeln!(
            s,
            "  vendors: {} seen, {} pruned, {} memoized (hit-rate {:.1}%)",
            self.vendors_seen,
            self.vendors_pruned,
            self.vendors_memoized,
            self.prune_hit_rate * 100.0
        );
        let _ = writeln!(
            s,
            "  dp: {} runs, {} rows, {} cells ({:.1} cells/decision), {} early exits",
            self.dp_runs,
            self.dp_rows,
            self.dp_cells,
            self.dp_cells_per_decision,
            self.dp_early_exits
        );
        let _ = writeln!(
            s,
            "  kernel: {} simd rows, {} scalar tail rows, {} fallback dispatches",
            self.simd_rows, self.scalar_tail_rows, self.fallback_dispatches
        );
        let _ = writeln!(
            s,
            "  grids: {} built, {} cells; dual updates: {}",
            self.grid_builds, self.grid_cells, self.dual_updates
        );
        if self.pool_tasks > 0 {
            let _ = writeln!(
                s,
                "  pool: {} tasks, {:.1} ms parked, {} epochs overlapped",
                self.pool_tasks,
                self.pool_park_ns as f64 / 1e6,
                self.epochs_overlapped
            );
        }
        if self.latency.count > 0 {
            let _ = writeln!(
                s,
                "  decide latency ({}): p50 {:.1} µs, p95 {:.1} µs, p99 {:.1} µs, max {:.1} µs",
                if self.latency.exact {
                    "exact"
                } else {
                    "histogram"
                },
                self.latency.p50_nanos / 1e3,
                self.latency.p95_nanos / 1e3,
                self.latency.p99_nanos / 1e3,
                self.latency.max_nanos / 1e3
            );
        }
        if let Some(u) = &self.utilization {
            let _ = writeln!(
                s,
                "  utilization: compute mean {:.1}% / peak {:.1}%, memory mean {:.1}%, peak colocation {}",
                u.mean_compute * 100.0,
                u.peak_compute * 100.0,
                u.mean_memory * 100.0,
                u.peak_colocation
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_counters_copies_every_tally() {
        let c = Counters::default();
        c.bump(&c.decisions, 4);
        c.bump(&c.admitted, 3);
        c.bump(&c.rejected_surplus, 1);
        c.bump(&c.vendors_seen, 12);
        c.bump(&c.vendors_pruned, 6);
        c.bump(&c.dp_runs, 6);
        c.bump(&c.dp_cells, 240);
        c.bump(&c.simd_rows, 5);
        c.bump(&c.scalar_tail_rows, 2);
        c.bump(&c.fallback_dispatches, 1);
        c.bump(&c.dual_updates, 9);
        c.decide_latency.record_nanos(10_000);
        let r = RunReport::from_counters("pdFTSP", &c);
        assert_eq!(r.scheduler, "pdFTSP");
        assert_eq!(r.decisions, 4);
        assert_eq!(r.admitted, 3);
        assert_eq!(r.rejected(), 1);
        assert!((r.prune_hit_rate - 0.5).abs() < 1e-12);
        assert!((r.dp_cells_per_decision - 60.0).abs() < 1e-12);
        assert_eq!(r.simd_rows, 5);
        assert_eq!(r.scalar_tail_rows, 2);
        assert_eq!(r.fallback_dispatches, 1);
        assert_eq!(r.dual_updates, 9);
        assert_eq!(r.latency.count, 1);
        assert!(!r.latency.exact);
        assert!(r.utilization.is_none());
    }

    #[test]
    fn tallies_split_rejections_by_reason() {
        let mut r = RunReport::named("EFT");
        r.tally_admitted();
        r.tally_rejected(Reason::NoFeasibleSchedule);
        r.tally_rejected(Reason::InsufficientCapacity);
        r.tally_rejected(Reason::InsufficientCapacity);
        assert_eq!(r.decisions, 4);
        assert_eq!(r.admitted, 1);
        assert_eq!(r.rejected(), 3);
        assert_eq!(r.rejected_capacity, 2);
    }

    #[test]
    fn exact_latency_overrides_histogram_estimates() {
        let samples = vec![1e-6; 99].into_iter().chain([1e-3]).collect::<Vec<_>>();
        let r = RunReport::named("x").with_exact_latency(&samples);
        assert!(r.latency.exact);
        assert_eq!(r.latency.count, 100);
        assert!((r.latency.p50_nanos - 1_000.0).abs() < 1e-6);
        assert!((r.latency.p99_nanos - 1_000.0).abs() < 1e-6);
        assert!((r.latency.max_nanos - 1_000_000.0).abs() < 1e-6);
        // Empty / non-finite samples leave the block untouched.
        let r2 = RunReport::named("x").with_exact_latency(&[f64::NAN]);
        assert!(!r2.latency.exact);
    }

    #[test]
    fn json_contains_every_headline_field() {
        let mut r = RunReport::named("pdFTSP");
        r.tally_admitted();
        let json = r
            .with_utilization(UtilizationSummary {
                mean_compute: 0.25,
                peak_compute: 1.0,
                mean_memory: 0.125,
                peak_colocation: 2,
                mean_colocation_busy: 2.0,
            })
            .to_json();
        for key in [
            "\"scheduler\"",
            "\"admitted\": 1",
            "\"prune_hit_rate\"",
            "\"dp_cells\"",
            "\"simd_rows\"",
            "\"scalar_tail_rows\"",
            "\"fallback_dispatches\"",
            "\"dual_updates\"",
            "\"p50_nanos\"",
            "\"peak_colocation\": 2",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Output must be balanced braces (crude structural check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    fn render_text_mentions_latency_only_when_sampled() {
        let r = RunReport::named("x");
        assert!(!r.render_text().contains("decide latency"));
        let r = r.with_exact_latency(&[2e-6]);
        assert!(r.render_text().contains("decide latency (exact)"));
    }

    #[test]
    fn pool_counters_flow_into_json_and_text() {
        let bare = RunReport::named("x");
        assert!(!bare.render_text().contains("pool:"));
        assert!(bare.to_json().contains("\"pool_tasks\": 0"));
        let r = RunReport::named("x").with_pool(12, 3_500_000, 4);
        assert_eq!(r.pool_tasks, 12);
        let json = r.to_json();
        assert!(json.contains("\"pool_tasks\": 12"), "{json}");
        assert!(json.contains("\"pool_park_ns\": 3500000"), "{json}");
        assert!(json.contains("\"epochs_overlapped\": 4"), "{json}");
        let text = r.render_text();
        assert!(text.contains("pool: 12 tasks"), "{text}");
        assert!(text.contains("4 epochs overlapped"), "{text}");
    }
}
