//! Event sinks: where emitted [`Event`]s go.
//!
//! Three implementations cover the three deployment shapes:
//!
//! * [`NoopSink`] — production default. Reports `enabled() == false`, so
//!   [`crate::Telemetry::emit`] never even constructs the event.
//! * [`RingSink`] — bounded in-memory buffer. Used by the invariant tests
//!   and for live inspection; keeps the most recent `capacity` events.
//! * [`JsonlSink`] — buffered JSON-lines writer for `--telemetry <path>`.
//!
//! Two composition sinks support the observability layer:
//!
//! * [`TeeSink`] — fans every event out to several sinks (e.g. a flight
//!   recorder plus a span log).
//! * [`SpanLog`] — keeps only [`Event::Span`] records, for trace export.

use crate::event::Event;
use crate::flight::FlightRecorder;
use crate::span::Span;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Receives emitted events. Implementations must be internally
/// synchronized: parallel vendor workers may emit concurrently.
pub trait Sink: Send + Sync {
    /// Records one event.
    fn emit(&self, event: &Event);

    /// Whether emitting is worthwhile at all. [`crate::Telemetry`] caches
    /// this at construction to keep the hot-path check branch-cheap, so it
    /// must be constant over the sink's lifetime.
    fn enabled(&self) -> bool {
        true
    }

    /// Flushes any buffered output (no-op for in-memory sinks).
    fn flush(&self) -> io::Result<()> {
        Ok(())
    }

    /// The flight recorder behind this sink, if any — lets fault
    /// handlers trigger a crash dump through the `dyn Sink` handle
    /// without downcasting. [`TeeSink`] forwards to the first member
    /// that has one.
    fn flight(&self) -> Option<&FlightRecorder> {
        None
    }
}

/// Discards everything; `enabled()` is `false` so events are never built.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn emit(&self, _event: &Event) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Keeps the most recent `capacity` events in memory.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    state: Mutex<RingState>,
}

#[derive(Debug, Default)]
struct RingState {
    events: Vec<Event>,
    /// Index of the logical head once the buffer has wrapped.
    head: usize,
    /// Total events ever emitted (≥ `events.len()`).
    total: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events (`capacity ≥ 1`).
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RingSink capacity must be positive");
        RingSink {
            capacity,
            state: Mutex::new(RingState::default()),
        }
    }

    /// The retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        let state = self.state.lock().expect("ring sink poisoned");
        let mut out = Vec::with_capacity(state.events.len());
        out.extend_from_slice(&state.events[state.head..]);
        out.extend_from_slice(&state.events[..state.head]);
        out
    }

    /// Total events ever emitted, including evicted ones.
    #[must_use]
    pub fn total_emitted(&self) -> u64 {
        self.state.lock().expect("ring sink poisoned").total
    }

    /// Whether older events have been evicted.
    #[must_use]
    pub fn overflowed(&self) -> bool {
        let state = self.state.lock().expect("ring sink poisoned");
        state.total > state.events.len() as u64
    }
}

impl Sink for RingSink {
    fn emit(&self, event: &Event) {
        let mut state = self.state.lock().expect("ring sink poisoned");
        state.total += 1;
        if state.events.len() < self.capacity {
            state.events.push(event.clone());
        } else {
            let head = state.head;
            state.events[head] = event.clone();
            state.head = (head + 1) % self.capacity;
        }
    }
}

/// Streams events as JSON lines to a file (one [`Event::to_json`] object
/// per line). Buffered; flushed on [`Sink::flush`] and on drop.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
    /// Lines written so far.
    lines: Mutex<u64>,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`.
    ///
    /// # Errors
    /// Propagates the underlying `File::create` failure.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
            lines: Mutex::new(0),
        })
    }

    /// Lines written so far (buffered lines included).
    #[must_use]
    pub fn lines_written(&self) -> u64 {
        *self.lines.lock().expect("jsonl sink poisoned")
    }
}

impl Sink for JsonlSink {
    fn emit(&self, event: &Event) {
        let mut w = self.writer.lock().expect("jsonl sink poisoned");
        // An I/O error mid-stream (disk full) must not abort the
        // scheduler; the final flush() surfaces persistent failures.
        let _ = writeln!(w, "{}", event.to_json());
        drop(w);
        *self.lines.lock().expect("jsonl sink poisoned") += 1;
    }

    fn flush(&self) -> io::Result<()> {
        self.writer.lock().expect("jsonl sink poisoned").flush()
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

/// Fans every event out to several sinks — e.g. a [`FlightRecorder`]
/// plus a [`SpanLog`] on a service shard.
pub struct TeeSink {
    sinks: Vec<Arc<dyn Sink>>,
    enabled: bool,
}

impl std::fmt::Debug for TeeSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TeeSink")
            .field("sinks", &self.sinks.len())
            .field("enabled", &self.enabled)
            .finish()
    }
}

impl TeeSink {
    /// A tee over `sinks`; enabled iff any member is enabled (cached,
    /// honoring the [`Sink::enabled`] constancy contract).
    #[must_use]
    pub fn new(sinks: Vec<Arc<dyn Sink>>) -> TeeSink {
        let enabled = sinks.iter().any(|s| s.enabled());
        TeeSink { sinks, enabled }
    }
}

impl Sink for TeeSink {
    fn emit(&self, event: &Event) {
        for s in &self.sinks {
            s.emit(event);
        }
    }

    fn enabled(&self) -> bool {
        self.enabled
    }

    fn flush(&self) -> io::Result<()> {
        for s in &self.sinks {
            s.flush()?;
        }
        Ok(())
    }

    fn flight(&self) -> Option<&FlightRecorder> {
        self.sinks.iter().find_map(|s| s.flight())
    }
}

/// Retains only [`Event::Span`] records — the service drains one per
/// shard to assemble the run's trace for Chrome export.
#[derive(Debug, Default)]
pub struct SpanLog {
    spans: Mutex<Vec<Span>>,
}

impl SpanLog {
    /// An empty span log.
    #[must_use]
    pub fn new() -> SpanLog {
        SpanLog::default()
    }

    /// A copy of the spans recorded so far, in emission order.
    #[must_use]
    pub fn spans(&self) -> Vec<Span> {
        self.spans.lock().expect("span log poisoned").clone()
    }

    /// Removes and returns the recorded spans.
    #[must_use]
    pub fn drain(&self) -> Vec<Span> {
        std::mem::take(&mut *self.spans.lock().expect("span log poisoned"))
    }

    /// Number of spans currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.lock().expect("span log poisoned").len()
    }

    /// Whether no spans have been recorded (or all were drained).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for SpanLog {
    fn emit(&self, event: &Event) {
        if let Event::Span(sp) = event {
            self.spans.lock().expect("span log poisoned").push(*sp);
        }
    }
}

/// Parses a JSONL stream (e.g. a file written by [`JsonlSink`]) back into
/// events. Blank lines are skipped; any malformed line aborts with its
/// 1-based line number for diagnosis.
///
/// # Errors
/// Returns the offending line number and parse error.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, (usize, crate::event::EventParseError)> {
    let mut events = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match Event::from_json(line) {
            Ok(e) => events.push(e),
            Err(err) => return Err((idx + 1, err)),
        }
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Reason;

    fn ev(task: usize) -> Event {
        Event::Rejected {
            task,
            reason: Reason::NoFeasibleSchedule,
        }
    }

    #[test]
    fn noop_sink_is_disabled() {
        assert!(!NoopSink.enabled());
        NoopSink.emit(&ev(0)); // must not panic
        assert!(NoopSink.flush().is_ok());
    }

    #[test]
    fn ring_keeps_most_recent_in_order() {
        let ring = RingSink::new(3);
        for task in 0..5 {
            ring.emit(&ev(task));
        }
        let tasks: Vec<usize> = ring.events().iter().map(Event::task).collect();
        assert_eq!(tasks, vec![2, 3, 4]);
        assert_eq!(ring.total_emitted(), 5);
        assert!(ring.overflowed());
    }

    #[test]
    fn ring_below_capacity_keeps_everything() {
        let ring = RingSink::new(8);
        ring.emit(&ev(1));
        ring.emit(&ev(2));
        let tasks: Vec<usize> = ring.events().iter().map(Event::task).collect();
        assert_eq!(tasks, vec![1, 2]);
        assert!(!ring.overflowed());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_ring_is_rejected() {
        let _ = RingSink::new(0);
    }

    #[test]
    fn jsonl_sink_round_trips_through_a_file() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "pdftsp-telemetry-sink-test-{}.jsonl",
            std::process::id()
        ));
        let sink = JsonlSink::create(&path).expect("create jsonl");
        let original = vec![
            Event::ArrivalSeen {
                task: 4,
                slot: 1,
                bid: 2.5,
                vendors: 3,
            },
            ev(4),
        ];
        for e in &original {
            sink.emit(e);
        }
        sink.flush().expect("flush");
        assert_eq!(sink.lines_written(), 2);
        let text = std::fs::read_to_string(&path).expect("read back");
        let parsed = parse_jsonl(&text).expect("parse");
        assert_eq!(parsed, original);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn parse_jsonl_reports_offending_line() {
        let text = format!("{}\nnot json\n", ev(1).to_json());
        let (line, _) = parse_jsonl(&text).unwrap_err();
        assert_eq!(line, 2);
    }

    #[test]
    fn tee_fans_out_and_surfaces_the_flight_recorder() {
        let ring = Arc::new(RingSink::new(8));
        let fr = Arc::new(FlightRecorder::new(2, 8));
        let tee = TeeSink::new(vec![ring.clone(), fr.clone()]);
        assert!(tee.enabled());
        tee.emit(&ev(5));
        assert_eq!(ring.total_emitted(), 1);
        assert_eq!(fr.total_emitted(), 1);
        assert_eq!(tee.flight().map(FlightRecorder::shard), Some(2));
        assert!(tee.flush().is_ok());
        // A tee of disabled sinks is disabled.
        assert!(!TeeSink::new(vec![Arc::new(NoopSink)]).enabled());
    }

    #[test]
    fn span_log_keeps_only_spans() {
        let log = SpanLog::new();
        assert!(log.is_empty());
        log.emit(&ev(1));
        log.emit(&Event::Span(Span::route(1, 0, 2, 0)));
        log.emit(&Event::Span(Span::propose(1, 0, 0, 42)));
        assert_eq!(log.len(), 2);
        let spans = log.drain();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].task, 1);
        assert!(log.is_empty());
    }
}
