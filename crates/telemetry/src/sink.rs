//! Event sinks: where emitted [`Event`]s go.
//!
//! Three implementations cover the three deployment shapes:
//!
//! * [`NoopSink`] — production default. Reports `enabled() == false`, so
//!   [`crate::Telemetry::emit`] never even constructs the event.
//! * [`RingSink`] — bounded in-memory buffer. Used by the invariant tests
//!   and for live inspection; keeps the most recent `capacity` events.
//! * [`JsonlSink`] — buffered JSON-lines writer for `--telemetry <path>`.

use crate::event::Event;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Receives emitted events. Implementations must be internally
/// synchronized: parallel vendor workers may emit concurrently.
pub trait Sink: Send + Sync {
    /// Records one event.
    fn emit(&self, event: &Event);

    /// Whether emitting is worthwhile at all. [`crate::Telemetry`] caches
    /// this at construction to keep the hot-path check branch-cheap, so it
    /// must be constant over the sink's lifetime.
    fn enabled(&self) -> bool {
        true
    }

    /// Flushes any buffered output (no-op for in-memory sinks).
    fn flush(&self) -> io::Result<()> {
        Ok(())
    }
}

/// Discards everything; `enabled()` is `false` so events are never built.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn emit(&self, _event: &Event) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Keeps the most recent `capacity` events in memory.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    state: Mutex<RingState>,
}

#[derive(Debug, Default)]
struct RingState {
    events: Vec<Event>,
    /// Index of the logical head once the buffer has wrapped.
    head: usize,
    /// Total events ever emitted (≥ `events.len()`).
    total: u64,
}

impl RingSink {
    /// A ring holding at most `capacity` events (`capacity ≥ 1`).
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RingSink capacity must be positive");
        RingSink {
            capacity,
            state: Mutex::new(RingState::default()),
        }
    }

    /// The retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        let state = self.state.lock().expect("ring sink poisoned");
        let mut out = Vec::with_capacity(state.events.len());
        out.extend_from_slice(&state.events[state.head..]);
        out.extend_from_slice(&state.events[..state.head]);
        out
    }

    /// Total events ever emitted, including evicted ones.
    #[must_use]
    pub fn total_emitted(&self) -> u64 {
        self.state.lock().expect("ring sink poisoned").total
    }

    /// Whether older events have been evicted.
    #[must_use]
    pub fn overflowed(&self) -> bool {
        let state = self.state.lock().expect("ring sink poisoned");
        state.total > state.events.len() as u64
    }
}

impl Sink for RingSink {
    fn emit(&self, event: &Event) {
        let mut state = self.state.lock().expect("ring sink poisoned");
        state.total += 1;
        if state.events.len() < self.capacity {
            state.events.push(event.clone());
        } else {
            let head = state.head;
            state.events[head] = event.clone();
            state.head = (head + 1) % self.capacity;
        }
    }
}

/// Streams events as JSON lines to a file (one [`Event::to_json`] object
/// per line). Buffered; flushed on [`Sink::flush`] and on drop.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
    /// Lines written so far.
    lines: Mutex<u64>,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`.
    ///
    /// # Errors
    /// Propagates the underlying `File::create` failure.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
            lines: Mutex::new(0),
        })
    }

    /// Lines written so far (buffered lines included).
    #[must_use]
    pub fn lines_written(&self) -> u64 {
        *self.lines.lock().expect("jsonl sink poisoned")
    }
}

impl Sink for JsonlSink {
    fn emit(&self, event: &Event) {
        let mut w = self.writer.lock().expect("jsonl sink poisoned");
        // An I/O error mid-stream (disk full) must not abort the
        // scheduler; the final flush() surfaces persistent failures.
        let _ = writeln!(w, "{}", event.to_json());
        drop(w);
        *self.lines.lock().expect("jsonl sink poisoned") += 1;
    }

    fn flush(&self) -> io::Result<()> {
        self.writer.lock().expect("jsonl sink poisoned").flush()
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

/// Parses a JSONL stream (e.g. a file written by [`JsonlSink`]) back into
/// events. Blank lines are skipped; any malformed line aborts with its
/// 1-based line number for diagnosis.
///
/// # Errors
/// Returns the offending line number and parse error.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, (usize, crate::event::EventParseError)> {
    let mut events = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match Event::from_json(line) {
            Ok(e) => events.push(e),
            Err(err) => return Err((idx + 1, err)),
        }
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Reason;

    fn ev(task: usize) -> Event {
        Event::Rejected {
            task,
            reason: Reason::NoFeasibleSchedule,
        }
    }

    #[test]
    fn noop_sink_is_disabled() {
        assert!(!NoopSink.enabled());
        NoopSink.emit(&ev(0)); // must not panic
        assert!(NoopSink.flush().is_ok());
    }

    #[test]
    fn ring_keeps_most_recent_in_order() {
        let ring = RingSink::new(3);
        for task in 0..5 {
            ring.emit(&ev(task));
        }
        let tasks: Vec<usize> = ring.events().iter().map(Event::task).collect();
        assert_eq!(tasks, vec![2, 3, 4]);
        assert_eq!(ring.total_emitted(), 5);
        assert!(ring.overflowed());
    }

    #[test]
    fn ring_below_capacity_keeps_everything() {
        let ring = RingSink::new(8);
        ring.emit(&ev(1));
        ring.emit(&ev(2));
        let tasks: Vec<usize> = ring.events().iter().map(Event::task).collect();
        assert_eq!(tasks, vec![1, 2]);
        assert!(!ring.overflowed());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_ring_is_rejected() {
        let _ = RingSink::new(0);
    }

    #[test]
    fn jsonl_sink_round_trips_through_a_file() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "pdftsp-telemetry-sink-test-{}.jsonl",
            std::process::id()
        ));
        let sink = JsonlSink::create(&path).expect("create jsonl");
        let original = vec![
            Event::ArrivalSeen {
                task: 4,
                slot: 1,
                bid: 2.5,
                vendors: 3,
            },
            ev(4),
        ];
        for e in &original {
            sink.emit(e);
        }
        sink.flush().expect("flush");
        assert_eq!(sink.lines_written(), 2);
        let text = std::fs::read_to_string(&path).expect("read back");
        let parsed = parse_jsonl(&text).expect("parse");
        assert_eq!(parsed, original);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn parse_jsonl_reports_offending_line() {
        let text = format!("{}\nnot json\n", ev(1).to_json());
        let (line, _) = parse_jsonl(&text).unwrap_err();
        assert_eq!(line, 2);
    }
}
