//! Per-shard lock-free flight recorder.
//!
//! A fixed-capacity ring of the most recent telemetry events, built for
//! the service's fault path: every record is serialized to a fixed block
//! of `u64` words (every [`Event`] variant is scalar-only by design, so
//! the encoding is total and lossless), and each ring slot is a tiny
//! seqlock — an atomic generation counter around the atomic word block.
//! Writers never take a lock and never allocate; a snapshot simply skips
//! slots whose generation changed while it was reading them. There is no
//! `unsafe` anywhere: every access is an atomic load/store, so a torn
//! logical read is discarded by the generation re-check rather than
//! being undefined behavior.
//!
//! On a crash/quarantine (`sim::faults::handle_crash`) or a panicking
//! shard worker (the [`FlightRecorder::panic_dump_guard`] RAII guard),
//! the ring is dumped as ordinary event JSONL to
//! `<dir>/flightrec-shard<k>.jsonl`, so a fault post-mortem is
//! self-contained and `parse_jsonl` replays it bit-exactly.

use std::fs;
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;

use crate::event::{Event, Reason};
use crate::sink::Sink;
use crate::span::{Span, Stage};

/// Fixed word count per encoded event: 1 tag word plus up to 9 payload
/// words (the `span` record is the widest variant).
pub const EVENT_WORDS: usize = 10;

/// Encodes an event as `[tag, payload...]`. Floats go through
/// `f64::to_bits`, so the round trip is bit-exact; booleans and enum
/// discriminants become small integers.
fn encode(e: &Event) -> [u64; EVENT_WORDS] {
    let mut w = [0u64; EVENT_WORDS];
    match *e {
        Event::ArrivalSeen {
            task,
            slot,
            bid,
            vendors,
        } => {
            w[0] = 1;
            w[1] = task as u64;
            w[2] = slot as u64;
            w[3] = bid.to_bits();
            w[4] = vendors as u64;
        }
        Event::VendorPruned {
            task,
            vendor,
            bound,
        } => {
            w[0] = 2;
            w[1] = task as u64;
            w[2] = vendor as u64;
            w[3] = bound.to_bits();
        }
        Event::DpRun {
            task,
            start,
            rows,
            cells,
            early_exit,
            feasible,
        } => {
            w[0] = 3;
            w[1] = task as u64;
            w[2] = start as u64;
            w[3] = rows as u64;
            w[4] = cells;
            w[5] = u64::from(early_exit);
            w[6] = u64::from(feasible);
        }
        Event::Admitted {
            task,
            surplus,
            payment,
            placements,
        } => {
            w[0] = 4;
            w[1] = task as u64;
            w[2] = surplus.to_bits();
            w[3] = payment.to_bits();
            w[4] = placements as u64;
        }
        Event::Rejected { task, reason } => {
            w[0] = 5;
            w[1] = task as u64;
            w[2] = match reason {
                Reason::NoFeasibleSchedule => 0,
                Reason::NonPositiveSurplus => 1,
                Reason::InsufficientCapacity => 2,
            };
        }
        Event::DualUpdate {
            task,
            node,
            slot,
            lambda,
            phi,
        } => {
            w[0] = 6;
            w[1] = task as u64;
            w[2] = node as u64;
            w[3] = slot as u64;
            w[4] = lambda.to_bits();
            w[5] = phi.to_bits();
        }
        Event::NodeDown { node, slot } => {
            w[0] = 7;
            w[1] = node as u64;
            w[2] = slot as u64;
        }
        Event::NodeUp { node, slot } => {
            w[0] = 8;
            w[1] = node as u64;
            w[2] = slot as u64;
        }
        Event::TaskResubmitted {
            task,
            slot,
            remaining_work,
            admitted,
        } => {
            w[0] = 9;
            w[1] = task as u64;
            w[2] = slot as u64;
            w[3] = remaining_work;
            w[4] = u64::from(admitted);
        }
        Event::RefundIssued {
            task,
            slot,
            refund,
            consumed,
        } => {
            w[0] = 10;
            w[1] = task as u64;
            w[2] = slot as u64;
            w[3] = refund.to_bits();
            w[4] = consumed.to_bits();
        }
        Event::Span(ref sp) => {
            w[0] = 11;
            w[1] = sp.stage.index();
            w[2] = sp.trace;
            w[3] = sp.span;
            w[4] = sp.parent;
            w[5] = sp.task as u64;
            w[6] = sp.shard as u64;
            w[7] = sp.epoch as u64;
            w[8] = sp.ts;
            w[9] = sp.dur;
        }
    }
    w
}

/// Inverse of [`encode`]; `None` for junk (e.g. a torn read the seqlock
/// failed to filter, which cannot happen under the ordering below but is
/// cheap to guard).
fn decode(w: &[u64; EVENT_WORDS]) -> Option<Event> {
    Some(match w[0] {
        1 => Event::ArrivalSeen {
            task: w[1] as usize,
            slot: w[2] as usize,
            bid: f64::from_bits(w[3]),
            vendors: w[4] as usize,
        },
        2 => Event::VendorPruned {
            task: w[1] as usize,
            vendor: w[2] as usize,
            bound: f64::from_bits(w[3]),
        },
        3 => Event::DpRun {
            task: w[1] as usize,
            start: w[2] as usize,
            rows: w[3] as usize,
            cells: w[4],
            early_exit: w[5] != 0,
            feasible: w[6] != 0,
        },
        4 => Event::Admitted {
            task: w[1] as usize,
            surplus: f64::from_bits(w[2]),
            payment: f64::from_bits(w[3]),
            placements: w[4] as usize,
        },
        5 => Event::Rejected {
            task: w[1] as usize,
            reason: match w[2] {
                0 => Reason::NoFeasibleSchedule,
                1 => Reason::NonPositiveSurplus,
                2 => Reason::InsufficientCapacity,
                _ => return None,
            },
        },
        6 => Event::DualUpdate {
            task: w[1] as usize,
            node: w[2] as usize,
            slot: w[3] as usize,
            lambda: f64::from_bits(w[4]),
            phi: f64::from_bits(w[5]),
        },
        7 => Event::NodeDown {
            node: w[1] as usize,
            slot: w[2] as usize,
        },
        8 => Event::NodeUp {
            node: w[1] as usize,
            slot: w[2] as usize,
        },
        9 => Event::TaskResubmitted {
            task: w[1] as usize,
            slot: w[2] as usize,
            remaining_work: w[3],
            admitted: w[4] != 0,
        },
        10 => Event::RefundIssued {
            task: w[1] as usize,
            slot: w[2] as usize,
            refund: f64::from_bits(w[3]),
            consumed: f64::from_bits(w[4]),
        },
        11 => Event::Span(Span {
            stage: Stage::from_index(w[1])?,
            trace: w[2],
            span: w[3],
            parent: w[4],
            task: w[5] as usize,
            shard: w[6] as usize,
            epoch: w[7] as usize,
            ts: w[8],
            dur: w[9],
        }),
        _ => return None,
    })
}

/// One ring slot: a seqlock generation around an atomic word block. A
/// slot holding ticket `t` publishes generation `2t + 2`; generation
/// `2t + 1` means "ticket `t` is being written".
struct RecordSlot {
    seq: AtomicU64,
    words: [AtomicU64; EVENT_WORDS],
}

impl RecordSlot {
    fn empty() -> RecordSlot {
        RecordSlot {
            seq: AtomicU64::new(u64::MAX),
            words: [const { AtomicU64::new(0) }; EVENT_WORDS],
        }
    }
}

/// The per-shard flight recorder: a lock-free ring of the last
/// `capacity` events, usable directly as a [`Sink`].
pub struct FlightRecorder {
    shard: usize,
    capacity: usize,
    slots: Box<[RecordSlot]>,
    cursor: AtomicU64,
    dump_dir: Option<PathBuf>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("shard", &self.shard)
            .field("capacity", &self.capacity)
            .field("total_emitted", &self.total_emitted())
            .field("dump_dir", &self.dump_dir)
            .finish_non_exhaustive()
    }
}

impl FlightRecorder {
    /// A recorder for `shard` retaining the last `capacity` events
    /// (capacity is clamped to ≥ 1). Without a dump dir, [`Self::dump`]
    /// is a no-op — use [`Self::with_dump_dir`] to arm crash dumps.
    #[must_use]
    pub fn new(shard: usize, capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        let slots = (0..capacity)
            .map(|_| RecordSlot::empty())
            .collect::<Vec<_>>()
            .into_boxed_slice();
        FlightRecorder {
            shard,
            capacity,
            slots,
            cursor: AtomicU64::new(0),
            dump_dir: None,
        }
    }

    /// Like [`Self::new`], with crash dumps armed to write
    /// `<dir>/flightrec-shard<k>.jsonl`.
    #[must_use]
    pub fn with_dump_dir(shard: usize, capacity: usize, dir: PathBuf) -> FlightRecorder {
        let mut fr = FlightRecorder::new(shard, capacity);
        fr.dump_dir = Some(dir);
        fr
    }

    /// The shard this recorder belongs to.
    #[must_use]
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Ring capacity (events retained).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events recorded over the recorder's lifetime (≥ the number
    /// retained once the ring wraps).
    #[must_use]
    pub fn total_emitted(&self) -> u64 {
        self.cursor.load(Ordering::Acquire)
    }

    /// Records one event. Lock-free and allocation-free: one
    /// fetch-add for the ticket, then seqlock-guarded word stores.
    pub fn record(&self, event: &Event) {
        let ticket = self.cursor.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(ticket % self.capacity as u64) as usize];
        slot.seq.store(ticket * 2 + 1, Ordering::Release);
        // The odd generation is visible before any word store below.
        fence(Ordering::Release);
        let words = encode(event);
        for (cell, v) in slot.words.iter().zip(words) {
            cell.store(v, Ordering::Relaxed);
        }
        slot.seq.store(ticket * 2 + 2, Ordering::Release);
    }

    /// The retained events, oldest first. Slots mid-overwrite at read
    /// time are skipped (they are being replaced by newer records).
    #[must_use]
    pub fn snapshot(&self) -> Vec<Event> {
        let end = self.cursor.load(Ordering::Acquire);
        let start = end.saturating_sub(self.capacity as u64);
        let mut out = Vec::with_capacity((end - start) as usize);
        for ticket in start..end {
            let slot = &self.slots[(ticket % self.capacity as u64) as usize];
            if slot.seq.load(Ordering::Acquire) != ticket * 2 + 2 {
                continue;
            }
            let mut words = [0u64; EVENT_WORDS];
            for (w, cell) in words.iter_mut().zip(&slot.words) {
                *w = cell.load(Ordering::Relaxed);
            }
            // Re-check the generation: if a writer raced past while we
            // read the words, discard the (possibly torn) block.
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != ticket * 2 + 2 {
                continue;
            }
            if let Some(e) = decode(&words) {
                out.push(e);
            }
        }
        out
    }

    /// The retained events rendered as JSONL (the exact bytes
    /// [`Self::dump`] writes).
    #[must_use]
    pub fn render_jsonl(&self) -> String {
        let mut s = String::new();
        for e in self.snapshot() {
            s.push_str(&e.to_json());
            s.push('\n');
        }
        s
    }

    /// The dump path this recorder is armed with, if any.
    #[must_use]
    pub fn dump_path(&self) -> Option<PathBuf> {
        self.dump_dir
            .as_ref()
            .map(|d| d.join(format!("flightrec-shard{}.jsonl", self.shard)))
    }

    /// Dumps the retained events to `<dir>/flightrec-shard<k>.jsonl`
    /// (creating the directory), returning the path written, or
    /// `Ok(None)` when no dump dir is armed.
    pub fn dump(&self) -> io::Result<Option<PathBuf>> {
        let Some(path) = self.dump_path() else {
            return Ok(None);
        };
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let mut f = fs::File::create(&path)?;
        f.write_all(self.render_jsonl().as_bytes())?;
        f.flush()?;
        Ok(Some(path))
    }

    /// An RAII guard that dumps the ring if the holding thread unwinds
    /// from a panic — arm it at the top of a shard's work loop so the
    /// last events before a crash survive the stack unwind.
    #[must_use]
    pub fn panic_dump_guard(self: &Arc<Self>) -> PanicDumpGuard {
        PanicDumpGuard {
            recorder: Arc::clone(self),
        }
    }
}

impl Sink for FlightRecorder {
    fn emit(&self, event: &Event) {
        self.record(event);
    }

    fn flush(&self) -> io::Result<()> {
        Ok(())
    }

    fn flight(&self) -> Option<&FlightRecorder> {
        Some(self)
    }
}

/// See [`FlightRecorder::panic_dump_guard`].
#[derive(Debug)]
pub struct PanicDumpGuard {
    recorder: Arc<FlightRecorder>,
}

impl Drop for PanicDumpGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let _ = self.recorder.dump();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;

    fn samples() -> Vec<Event> {
        vec![
            Event::ArrivalSeen {
                task: 17,
                slot: 3,
                bid: 12.75,
                vendors: 5,
            },
            Event::VendorPruned {
                task: 17,
                vendor: usize::MAX,
                bound: -0.071_234_567_890_123,
            },
            Event::DpRun {
                task: 17,
                start: 4,
                rows: 9,
                cells: 1_234_567,
                early_exit: true,
                feasible: false,
            },
            Event::Admitted {
                task: 17,
                surplus: 3.5e-9,
                payment: 8.100_000_000_000_001,
                placements: 4,
            },
            Event::Rejected {
                task: 18,
                reason: Reason::InsufficientCapacity,
            },
            Event::DualUpdate {
                task: 17,
                node: 2,
                slot: 11,
                lambda: 0.1 + 0.2,
                phi: f64::MIN_POSITIVE,
            },
            Event::NodeDown { node: 3, slot: 12 },
            Event::NodeUp { node: 3, slot: 20 },
            Event::TaskResubmitted {
                task: 21,
                slot: 12,
                remaining_work: 987_654,
                admitted: false,
            },
            Event::RefundIssued {
                task: 21,
                slot: 12,
                refund: 4.099_999_999_999_999,
                consumed: 1.0e-3,
            },
            Event::Span(Span::route(17, 2, 3, 0)),
            Event::Span(Span::propose(17, 2, 0, 3_100_200)),
            Event::Span(Span::commit(17, 2, 0, 4, 7)),
            Event::Span(Span::settle(48, 9)),
            Event::Span(Span::fault_recover(1, 2, 3, 12)),
        ]
    }

    #[test]
    fn word_encoding_round_trips_every_variant() {
        for e in samples() {
            let back = decode(&encode(&e)).unwrap_or_else(|| panic!("decode failed: {e:?}"));
            assert_eq!(e, back);
        }
        // Junk tags and junk discriminants decode to None, not garbage.
        assert_eq!(decode(&[99; EVENT_WORDS]), None);
        let mut bad_reason = encode(&Event::Rejected {
            task: 0,
            reason: Reason::NoFeasibleSchedule,
        });
        bad_reason[2] = 77;
        assert_eq!(decode(&bad_reason), None);
    }

    #[test]
    fn ring_retains_the_last_capacity_events_in_order() {
        let fr = FlightRecorder::new(0, 4);
        for i in 0..10usize {
            fr.record(&Event::NodeDown { node: i, slot: i });
        }
        assert_eq!(fr.total_emitted(), 10);
        let got = fr.snapshot();
        let nodes: Vec<usize> = got
            .iter()
            .map(|e| match e {
                Event::NodeDown { node, .. } => *node,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(nodes, vec![6, 7, 8, 9]);
    }

    #[test]
    fn dump_writes_parseable_jsonl_and_snapshot_matches() {
        let dir = std::env::temp_dir().join(format!("pdftsp-flighttest-{}", std::process::id()));
        let fr = FlightRecorder::with_dump_dir(3, 64, dir.clone());
        for e in samples() {
            fr.record(&e);
        }
        let path = fr.dump().expect("dump").expect("armed");
        assert!(path.ends_with("flightrec-shard3.jsonl"));
        let text = std::fs::read_to_string(&path).expect("read dump");
        let parsed = crate::parse_jsonl(&text).expect("parse dump");
        assert_eq!(parsed, samples());
        // Bit-exact: re-serializing reproduces the file byte for byte.
        let reserialized: String = parsed.iter().map(|e| e.to_json() + "\n").collect();
        assert_eq!(reserialized, text);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn undumped_recorder_reports_none() {
        let fr = FlightRecorder::new(0, 8);
        assert_eq!(fr.dump_path(), None);
        assert_eq!(fr.dump().expect("noop"), None);
    }

    #[test]
    fn concurrent_writers_never_tear_a_record() {
        let fr = Arc::new(FlightRecorder::new(0, 32));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let fr = Arc::clone(&fr);
                std::thread::spawn(move || {
                    for i in 0..500usize {
                        fr.record(&Event::DualUpdate {
                            task: w,
                            node: w,
                            slot: i,
                            lambda: w as f64 + 0.5,
                            phi: i as f64 + 0.25,
                        });
                    }
                })
            })
            .collect();
        // Reader races the writers; every decoded record must be
        // internally consistent (task == node, floats derived from them).
        for _ in 0..200 {
            for e in fr.snapshot() {
                match e {
                    Event::DualUpdate {
                        task,
                        node,
                        slot,
                        lambda,
                        phi,
                    } => {
                        assert_eq!(task, node);
                        assert_eq!(lambda, task as f64 + 0.5);
                        assert_eq!(phi, slot as f64 + 0.25);
                    }
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(fr.total_emitted(), 2000);
        assert_eq!(fr.snapshot().len(), 32);
    }
}
