//! Chrome `trace_event` JSON export of spans, loadable in
//! `about://tracing` / Perfetto.
//!
//! Every [`Span`] becomes one complete ("ph":"X") event: `ts`/`dur` are
//! the span's sim-clock ticks (microseconds — one scenario slot renders
//! as one second), `pid` is the shard, and `tid` is the task, so each
//! task's route → propose → commit slices line up on its own row inside
//! its shard's process group. Trace/span/parent ids ride along in
//! `args` for causal reconstruction. The output is a deterministic pure
//! function of the span list: callers sort spans first (the service
//! sorts by `(ts, span)`), and the rendered bytes are then identical
//! across worker counts.

use std::fmt::Write;

use crate::span::Span;

/// `tid`/`pid` shown for node/run-scoped spans whose task is
/// `usize::MAX` (Chrome wants small non-negative ids).
const SCOPE_TID: u64 = 0;

/// Renders a complete `trace_event` JSON document for `spans`, in the
/// given order.
#[must_use]
pub fn render_trace(spans: &[Span]) -> String {
    let mut out = String::with_capacity(64 + spans.len() * 160);
    out.push_str("{\"traceEvents\":[");
    for (i, sp) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let tid = if sp.task == usize::MAX {
            SCOPE_TID
        } else {
            sp.task as u64
        };
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"pdftsp\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{},\"tid\":{},\"args\":{{\"trace\":{},\"span\":{},\"parent\":{},\
             \"task\":{},\"epoch\":{}}}}}",
            sp.stage.as_str(),
            sp.ts,
            sp.dur,
            sp.shard,
            tid,
            sp.trace,
            sp.span,
            sp.parent,
            sp.task,
            sp.epoch,
        );
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_document_is_deterministic_and_well_formed() {
        let spans = vec![
            Span::route(3, 1, 0, 0),
            Span::propose(3, 1, 0, 100_200),
            Span::commit(3, 1, 0, 4, 0),
        ];
        let a = render_trace(&spans);
        let b = render_trace(&spans);
        assert_eq!(a, b);
        assert!(a.starts_with("{\"traceEvents\":["));
        assert!(a.ends_with("],\"displayTimeUnit\":\"ms\"}"));
        assert!(a.contains("\"name\":\"route\""));
        assert!(a.contains("\"name\":\"propose\""));
        assert!(a.contains("\"name\":\"commit\""));
        assert!(a.contains("\"ph\":\"X\""));
        assert_eq!(a.matches("\"pid\":1").count(), 3);
        // Exactly one object per span, comma separated.
        assert_eq!(a.matches("\"cat\":\"pdftsp\"").count(), 3);
    }

    #[test]
    fn node_scoped_spans_render_on_the_reserved_tid() {
        let s = Span::fault_recover(2, 0, 1, 5);
        let doc = render_trace(std::slice::from_ref(&s));
        assert!(doc.contains("\"tid\":0"));
        assert!(doc.contains("\"pid\":2"));
        assert!(doc.contains(&format!("\"task\":{}", usize::MAX)));
    }

    #[test]
    fn empty_trace_is_still_a_valid_document() {
        assert_eq!(
            render_trace(&[]),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}"
        );
    }
}
