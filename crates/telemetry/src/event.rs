//! The typed event taxonomy and its JSONL round-trip.
//!
//! One event is one flat JSON object on one line, tagged by `"ev"`:
//!
//! ```text
//! {"ev":"dp_run","task":7,"start":3,"rows":5,"cells":120,"early_exit":true,"feasible":true}
//! ```
//!
//! Serialization uses Rust's shortest round-trip float formatting
//! (`{:?}`), so `parse(serialize(e)) == e` holds bit-exactly for every
//! finite float — the property `tests/tests/telemetry_stream.rs` proves
//! over whole simulated runs. The parser accepts exactly the flat shape
//! the writer produces (no nested objects, no strings other than the tag
//! and reason tokens), which keeps it dependency-free.

use std::fmt;

use crate::span::{Span, Stage};

/// Why a task was rejected (mirrors `pdftsp_types::Rejection`; kept
/// separate so this crate stays dependency-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reason {
    /// No feasible schedule inside `[a_i + h_in, d_i]` at all.
    NoFeasibleSchedule,
    /// The best schedule had non-positive surplus `F(il) ≤ 0`.
    NonPositiveSurplus,
    /// `F(il) > 0` but residual capacity refused the schedule.
    InsufficientCapacity,
}

impl Reason {
    /// The wire token (`snake_case`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Reason::NoFeasibleSchedule => "no_feasible_schedule",
            Reason::NonPositiveSurplus => "non_positive_surplus",
            Reason::InsufficientCapacity => "insufficient_capacity",
        }
    }

    fn from_str(s: &str) -> Result<Self, EventParseError> {
        match s {
            "no_feasible_schedule" => Ok(Reason::NoFeasibleSchedule),
            "non_positive_surplus" => Ok(Reason::NonPositiveSurplus),
            "insufficient_capacity" => Ok(Reason::InsufficientCapacity),
            other => Err(EventParseError(format!("unknown reason `{other}`"))),
        }
    }
}

/// One structured observation from the scheduling hot path.
///
/// Ordering contract (per arriving task, single scheduler): `ArrivalSeen`
/// first; then any `VendorPruned`/`DpRun` in evaluation order; then — for
/// tasks whose best surplus is positive — one `DualUpdate` per chosen
/// `(k, t)` cell (Algorithm 1 updates prices *before* the line-8 capacity
/// check); finally exactly one of `Admitted`/`Rejected`.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A task entered `decide()`.
    ArrivalSeen {
        /// Task id.
        task: usize,
        /// Arrival slot `a_i`.
        slot: usize,
        /// Declared bid `b_i`.
        bid: f64,
        /// Number of vendor quotes (0 when `f_i = 0`).
        vendors: usize,
    },
    /// A vendor was skipped without running its DP: the delta-grid bound
    /// proved `F(il) ≤ bound ≤ 0`.
    VendorPruned {
        /// Task id.
        task: usize,
        /// Vendor index (`usize::MAX` for the no-preprocessing
        /// pseudo-quote).
        vendor: usize,
        /// The proven upper bound on `F(il)`.
        bound: f64,
    },
    /// One `findSchedule` invocation (Algorithm 2) for one start slot.
    DpRun {
        /// Task id.
        task: usize,
        /// First slot of the execution window (`a_i + h_in`).
        start: usize,
        /// DP rows swept (summed over refinement attempts).
        rows: usize,
        /// DP cells touched (summed over refinement attempts).
        cells: u64,
        /// The lower-bound early-exit fired before the last row.
        early_exit: bool,
        /// A schedule meeting `M_i` by the deadline exists.
        feasible: bool,
    },
    /// The bid won (Algorithm 1 lines 6–11).
    Admitted {
        /// Task id.
        task: usize,
        /// Admission surplus `F(il)` of Eq. (10).
        surplus: f64,
        /// Payment `p_i` of Eq. (14).
        payment: f64,
        /// Number of `(k, t)` placements committed.
        placements: usize,
    },
    /// The bid lost.
    Rejected {
        /// Task id.
        task: usize,
        /// Why.
        reason: Reason,
    },
    /// One `(k, t)` cell's dual prices after the Eq. (7)–(8) update.
    DualUpdate {
        /// Task id whose admission drove the update.
        task: usize,
        /// Node `k`.
        node: usize,
        /// Slot `t`.
        slot: usize,
        /// New compute price `λ_kt`.
        lambda: f64,
        /// New memory price `φ_kt`.
        phi: f64,
    },
    /// A node failed: its cells from `slot` on were quarantined.
    NodeDown {
        /// Node `k`.
        node: usize,
        /// First unavailable slot.
        slot: usize,
    },
    /// A failed node recovered: its quarantine was lifted at `slot`.
    NodeUp {
        /// Node `k`.
        node: usize,
        /// First available slot again.
        slot: usize,
    },
    /// A disrupted task's remnant re-entered the auction (Algorithm 1
    /// re-run over the remaining work under the current duals).
    TaskResubmitted {
        /// Task id.
        task: usize,
        /// Slot of the failure that disrupted it.
        slot: usize,
        /// Samples still outstanding at resubmission.
        remaining_work: u64,
        /// Whether the Eq. (10) test re-admitted the remnant.
        admitted: bool,
    },
    /// A disrupted task could not be recovered; the buyer pays only for
    /// consumed resources (Eq. (14) over the executed prefix) and the
    /// difference is refunded.
    RefundIssued {
        /// Task id.
        task: usize,
        /// Slot of the failure.
        slot: usize,
        /// Amount returned to the buyer.
        refund: f64,
        /// Charge retained for the executed prefix.
        consumed: f64,
    },
    /// One task-lifecycle span (see [`crate::span`]): causal stage
    /// records with parent links and sim-clock timestamps, carried on
    /// the same wire so every sink (JSONL, ring, flight recorder)
    /// handles them unchanged.
    Span(Span),
}

impl Event {
    /// The `"ev"` tag of this variant.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Event::ArrivalSeen { .. } => "arrival_seen",
            Event::VendorPruned { .. } => "vendor_pruned",
            Event::DpRun { .. } => "dp_run",
            Event::Admitted { .. } => "admitted",
            Event::Rejected { .. } => "rejected",
            Event::DualUpdate { .. } => "dual_update",
            Event::NodeDown { .. } => "node_down",
            Event::NodeUp { .. } => "node_up",
            Event::TaskResubmitted { .. } => "task_resubmitted",
            Event::RefundIssued { .. } => "refund_issued",
            Event::Span(_) => "span",
        }
    }

    /// The task this event belongs to (`usize::MAX` for node-scoped
    /// events, which have no task).
    #[must_use]
    pub fn task(&self) -> usize {
        match *self {
            Event::ArrivalSeen { task, .. }
            | Event::VendorPruned { task, .. }
            | Event::DpRun { task, .. }
            | Event::Admitted { task, .. }
            | Event::Rejected { task, .. }
            | Event::DualUpdate { task, .. }
            | Event::TaskResubmitted { task, .. }
            | Event::RefundIssued { task, .. } => task,
            Event::Span(ref sp) => sp.task,
            Event::NodeDown { .. } | Event::NodeUp { .. } => usize::MAX,
        }
    }

    /// One JSON object, no trailing newline.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"ev\":\"");
        s.push_str(self.kind());
        s.push('"');
        match *self {
            Event::ArrivalSeen {
                task,
                slot,
                bid,
                vendors,
            } => {
                push_usize(&mut s, "task", task);
                push_usize(&mut s, "slot", slot);
                push_f64(&mut s, "bid", bid);
                push_usize(&mut s, "vendors", vendors);
            }
            Event::VendorPruned {
                task,
                vendor,
                bound,
            } => {
                push_usize(&mut s, "task", task);
                push_usize(&mut s, "vendor", vendor);
                push_f64(&mut s, "bound", bound);
            }
            Event::DpRun {
                task,
                start,
                rows,
                cells,
                early_exit,
                feasible,
            } => {
                push_usize(&mut s, "task", task);
                push_usize(&mut s, "start", start);
                push_usize(&mut s, "rows", rows);
                push_u64(&mut s, "cells", cells);
                push_bool(&mut s, "early_exit", early_exit);
                push_bool(&mut s, "feasible", feasible);
            }
            Event::Admitted {
                task,
                surplus,
                payment,
                placements,
            } => {
                push_usize(&mut s, "task", task);
                push_f64(&mut s, "surplus", surplus);
                push_f64(&mut s, "payment", payment);
                push_usize(&mut s, "placements", placements);
            }
            Event::Rejected { task, reason } => {
                push_usize(&mut s, "task", task);
                s.push_str(",\"reason\":\"");
                s.push_str(reason.as_str());
                s.push('"');
            }
            Event::DualUpdate {
                task,
                node,
                slot,
                lambda,
                phi,
            } => {
                push_usize(&mut s, "task", task);
                push_usize(&mut s, "node", node);
                push_usize(&mut s, "slot", slot);
                push_f64(&mut s, "lambda", lambda);
                push_f64(&mut s, "phi", phi);
            }
            Event::NodeDown { node, slot } | Event::NodeUp { node, slot } => {
                push_usize(&mut s, "node", node);
                push_usize(&mut s, "slot", slot);
            }
            Event::TaskResubmitted {
                task,
                slot,
                remaining_work,
                admitted,
            } => {
                push_usize(&mut s, "task", task);
                push_usize(&mut s, "slot", slot);
                push_u64(&mut s, "remaining_work", remaining_work);
                push_bool(&mut s, "admitted", admitted);
            }
            Event::RefundIssued {
                task,
                slot,
                refund,
                consumed,
            } => {
                push_usize(&mut s, "task", task);
                push_usize(&mut s, "slot", slot);
                push_f64(&mut s, "refund", refund);
                push_f64(&mut s, "consumed", consumed);
            }
            Event::Span(ref sp) => {
                s.push_str(",\"stage\":\"");
                s.push_str(sp.stage.as_str());
                s.push('"');
                push_u64(&mut s, "trace", sp.trace);
                push_u64(&mut s, "span", sp.span);
                push_u64(&mut s, "parent", sp.parent);
                push_usize(&mut s, "task", sp.task);
                push_usize(&mut s, "shard", sp.shard);
                push_usize(&mut s, "epoch", sp.epoch);
                push_u64(&mut s, "ts", sp.ts);
                push_u64(&mut s, "dur", sp.dur);
            }
        }
        s.push('}');
        s
    }

    /// Parses one line produced by [`Event::to_json`].
    pub fn from_json(line: &str) -> Result<Event, EventParseError> {
        let fields = parse_flat_object(line)?;
        let tag = get_str(&fields, "ev")?;
        match tag {
            "arrival_seen" => Ok(Event::ArrivalSeen {
                task: get_usize(&fields, "task")?,
                slot: get_usize(&fields, "slot")?,
                bid: get_f64(&fields, "bid")?,
                vendors: get_usize(&fields, "vendors")?,
            }),
            "vendor_pruned" => Ok(Event::VendorPruned {
                task: get_usize(&fields, "task")?,
                vendor: get_usize(&fields, "vendor")?,
                bound: get_f64(&fields, "bound")?,
            }),
            "dp_run" => Ok(Event::DpRun {
                task: get_usize(&fields, "task")?,
                start: get_usize(&fields, "start")?,
                rows: get_usize(&fields, "rows")?,
                cells: get_u64(&fields, "cells")?,
                early_exit: get_bool(&fields, "early_exit")?,
                feasible: get_bool(&fields, "feasible")?,
            }),
            "admitted" => Ok(Event::Admitted {
                task: get_usize(&fields, "task")?,
                surplus: get_f64(&fields, "surplus")?,
                payment: get_f64(&fields, "payment")?,
                placements: get_usize(&fields, "placements")?,
            }),
            "rejected" => Ok(Event::Rejected {
                task: get_usize(&fields, "task")?,
                reason: Reason::from_str(get_str(&fields, "reason")?)?,
            }),
            "dual_update" => Ok(Event::DualUpdate {
                task: get_usize(&fields, "task")?,
                node: get_usize(&fields, "node")?,
                slot: get_usize(&fields, "slot")?,
                lambda: get_f64(&fields, "lambda")?,
                phi: get_f64(&fields, "phi")?,
            }),
            "node_down" => Ok(Event::NodeDown {
                node: get_usize(&fields, "node")?,
                slot: get_usize(&fields, "slot")?,
            }),
            "node_up" => Ok(Event::NodeUp {
                node: get_usize(&fields, "node")?,
                slot: get_usize(&fields, "slot")?,
            }),
            "task_resubmitted" => Ok(Event::TaskResubmitted {
                task: get_usize(&fields, "task")?,
                slot: get_usize(&fields, "slot")?,
                remaining_work: get_u64(&fields, "remaining_work")?,
                admitted: get_bool(&fields, "admitted")?,
            }),
            "refund_issued" => Ok(Event::RefundIssued {
                task: get_usize(&fields, "task")?,
                slot: get_usize(&fields, "slot")?,
                refund: get_f64(&fields, "refund")?,
                consumed: get_f64(&fields, "consumed")?,
            }),
            "span" => {
                let token = get_str(&fields, "stage")?;
                let stage = Stage::parse(token)
                    .ok_or_else(|| err(format!("unknown span stage `{token}`")))?;
                Ok(Event::Span(Span {
                    stage,
                    trace: get_u64(&fields, "trace")?,
                    span: get_u64(&fields, "span")?,
                    parent: get_u64(&fields, "parent")?,
                    task: get_usize(&fields, "task")?,
                    shard: get_usize(&fields, "shard")?,
                    epoch: get_usize(&fields, "epoch")?,
                    ts: get_u64(&fields, "ts")?,
                    dur: get_u64(&fields, "dur")?,
                }))
            }
            other => Err(EventParseError(format!("unknown event tag `{other}`"))),
        }
    }
}

/// A malformed event line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventParseError(pub String);

impl fmt::Display for EventParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "telemetry event parse error: {}", self.0)
    }
}

impl std::error::Error for EventParseError {}

fn push_usize(s: &mut String, key: &str, v: usize) {
    use fmt::Write;
    let _ = write!(s, ",\"{key}\":{v}");
}

fn push_u64(s: &mut String, key: &str, v: u64) {
    use fmt::Write;
    let _ = write!(s, ",\"{key}\":{v}");
}

fn push_bool(s: &mut String, key: &str, v: bool) {
    use fmt::Write;
    let _ = write!(s, ",\"{key}\":{v}");
}

fn push_f64(s: &mut String, key: &str, v: f64) {
    use fmt::Write;
    // `{v:?}` is Rust's shortest round-trip formatting; non-finite values
    // (never produced by the schedulers, but defensively) become quoted
    // tokens the parser maps back.
    if v.is_finite() {
        let _ = write!(s, ",\"{key}\":{v:?}");
    } else {
        let _ = write!(s, ",\"{key}\":\"{v:?}\"");
    }
}

fn err(msg: impl Into<String>) -> EventParseError {
    EventParseError(msg.into())
}

/// Splits `{"k":v,...}` into `(key, raw value)` pairs. Values are either
/// bare tokens (numbers, booleans) or quoted strings without escapes —
/// exactly what the writer emits.
fn parse_flat_object(line: &str) -> Result<Vec<(&str, &str)>, EventParseError> {
    let body = line
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| err(format!("not a JSON object: `{line}`")))?;
    let mut fields = Vec::with_capacity(8);
    for pair in body.split(',') {
        let (k, v) = pair
            .split_once(':')
            .ok_or_else(|| err(format!("malformed pair `{pair}`")))?;
        let k = k
            .trim()
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| err(format!("unquoted key in `{pair}`")))?;
        fields.push((k, v.trim()));
    }
    Ok(fields)
}

fn get_raw<'a>(fields: &[(&'a str, &'a str)], key: &str) -> Result<&'a str, EventParseError> {
    fields
        .iter()
        .find(|&&(k, _)| k == key)
        .map(|&(_, v)| v)
        .ok_or_else(|| err(format!("missing field `{key}`")))
}

fn get_str<'a>(fields: &[(&'a str, &'a str)], key: &str) -> Result<&'a str, EventParseError> {
    let raw = get_raw(fields, key)?;
    raw.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| err(format!("field `{key}` is not a string: `{raw}`")))
}

fn get_usize(fields: &[(&str, &str)], key: &str) -> Result<usize, EventParseError> {
    get_raw(fields, key)?
        .parse()
        .map_err(|_| err(format!("field `{key}` is not an integer")))
}

fn get_u64(fields: &[(&str, &str)], key: &str) -> Result<u64, EventParseError> {
    get_raw(fields, key)?
        .parse()
        .map_err(|_| err(format!("field `{key}` is not an integer")))
}

fn get_bool(fields: &[(&str, &str)], key: &str) -> Result<bool, EventParseError> {
    match get_raw(fields, key)? {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(err(format!("field `{key}` is not a bool: `{other}`"))),
    }
}

fn get_f64(fields: &[(&str, &str)], key: &str) -> Result<f64, EventParseError> {
    let raw = get_raw(fields, key)?;
    // Non-finite floats arrive quoted (see `push_f64`).
    let token = raw
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or(raw);
    token
        .parse()
        .map_err(|_| err(format!("field `{key}` is not a number: `{raw}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Event> {
        vec![
            Event::ArrivalSeen {
                task: 17,
                slot: 3,
                bid: 12.75,
                vendors: 5,
            },
            Event::VendorPruned {
                task: 17,
                vendor: usize::MAX,
                bound: -0.071_234_567_890_123,
            },
            Event::DpRun {
                task: 17,
                start: 4,
                rows: 9,
                cells: 1_234_567,
                early_exit: true,
                feasible: true,
            },
            Event::Admitted {
                task: 17,
                surplus: 3.5e-9,
                payment: 8.100_000_000_000_001,
                placements: 4,
            },
            Event::Rejected {
                task: 18,
                reason: Reason::InsufficientCapacity,
            },
            Event::DualUpdate {
                task: 17,
                node: 2,
                slot: 11,
                lambda: 0.1 + 0.2, // deliberately non-representable exactly
                phi: f64::MIN_POSITIVE,
            },
            Event::NodeDown { node: 3, slot: 12 },
            Event::NodeUp { node: 3, slot: 20 },
            Event::TaskResubmitted {
                task: 21,
                slot: 12,
                remaining_work: 987_654,
                admitted: false,
            },
            Event::RefundIssued {
                task: 21,
                slot: 12,
                refund: 4.099_999_999_999_999,
                consumed: 1.0e-3,
            },
            Event::Span(Span::route(17, 2, 3, 0)),
            Event::Span(Span::propose(17, 2, 0, 3_100_200)),
            Event::Span(Span::commit(17, 2, 0, 4, 7)),
            Event::Span(Span::settle(48, 9)),
            Event::Span(Span::fault_recover(1, 2, 3, 12)),
        ]
    }

    #[test]
    fn every_variant_round_trips_bit_exactly() {
        for e in samples() {
            let line = e.to_json();
            let back = Event::from_json(&line).unwrap_or_else(|err| panic!("{line}: {err}"));
            assert_eq!(e, back, "line: {line}");
        }
    }

    #[test]
    fn wire_shape_is_one_flat_tagged_object() {
        let line = Event::Rejected {
            task: 9,
            reason: Reason::NonPositiveSurplus,
        }
        .to_json();
        assert_eq!(
            line,
            "{\"ev\":\"rejected\",\"task\":9,\"reason\":\"non_positive_surplus\"}"
        );
        assert!(!line.contains('\n'));
    }

    #[test]
    fn span_wire_shape_is_one_flat_tagged_object() {
        let line = Event::Span(Span::propose(17, 2, 1, 3_100_200)).to_json();
        let expected = format!(
            "{{\"ev\":\"span\",\"stage\":\"propose\",\"trace\":17,\"span\":{},\"parent\":{},\
             \"task\":17,\"shard\":2,\"epoch\":1,\"ts\":3100200,\"dur\":50000}}",
            Span::propose(17, 2, 1, 0).span,
            Span::route(17, 2, 0, 0).span,
        );
        assert_eq!(line, expected);
        assert!(!line.contains('\n'));
        // Malformed stage tokens are rejected like any other bad field.
        let bad = line.replace("propose", "beige");
        assert!(Event::from_json(&bad).is_err());
    }

    #[test]
    fn non_finite_floats_survive_the_round_trip() {
        let e = Event::VendorPruned {
            task: 1,
            vendor: 2,
            bound: f64::NEG_INFINITY,
        };
        let back = Event::from_json(&e.to_json()).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn malformed_lines_are_rejected_with_context() {
        for bad in [
            "",
            "not json",
            "{\"ev\":\"dp_run\"}",
            "{\"ev\":\"nope\",\"task\":1}",
            "{\"ev\":\"rejected\",\"task\":1,\"reason\":\"beige\"}",
            "{\"ev\":\"arrival_seen\",\"task\":x,\"slot\":0,\"bid\":1,\"vendors\":0}",
        ] {
            assert!(Event::from_json(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn accessors_expose_kind_and_task() {
        let e = Event::DpRun {
            task: 5,
            start: 0,
            rows: 1,
            cells: 2,
            early_exit: false,
            feasible: false,
        };
        assert_eq!(e.kind(), "dp_run");
        assert_eq!(e.task(), 5);
        // Node-scoped events carry no task.
        assert_eq!(Event::NodeDown { node: 0, slot: 0 }.task(), usize::MAX);
        assert_eq!(Event::NodeUp { node: 0, slot: 0 }.task(), usize::MAX);
    }
}
