//! Prometheus text exposition (version 0.0.4) of the telemetry
//! counters and latency histograms.
//!
//! The renderer is a plain string builder — no HTTP server, no
//! dependencies — because the consumer here is `pdftsp serve-sim
//! --metrics-file`, which writes one exposition snapshot at run end (and
//! node-exporter-style file collectors pick it up from there). Counter
//! names follow the `pdftsp_<name>_total` convention; histograms render
//! cumulative `le` buckets in seconds with `_sum`/`_count`, mapping the
//! power-of-two nanosecond buckets of
//! [`LatencyHistogram`](crate::Counters) directly to `le` bounds.

use std::fmt::Write;

use crate::counters::{Counters, LatencyHistogram, LATENCY_BUCKETS};

/// Writes one `# HELP` + `# TYPE` header pair.
pub fn push_header(out: &mut String, name: &str, help: &str, mtype: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {mtype}");
}

/// Writes one sample line. `labels` is either empty or a
/// comma-separated `k="v"` list (no surrounding braces).
pub fn push_sample(out: &mut String, name: &str, labels: &str, value: f64) {
    if labels.is_empty() {
        let _ = writeln!(out, "{name} {}", fmt_value(value));
    } else {
        let _ = writeln!(out, "{name}{{{labels}}} {}", fmt_value(value));
    }
}

/// Prometheus-flavored value formatting: integers render bare,
/// non-integers use Rust's shortest round-trip form, and non-finite
/// values use the exposition tokens `+Inf`/`-Inf`/`NaN`.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        return "NaN".to_owned();
    }
    if v.is_infinite() {
        return if v > 0.0 { "+Inf" } else { "-Inf" }.to_owned();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:?}")
    }
}

/// Renders one histogram family (`<name>_bucket`/`_sum`/`_count`) in
/// seconds, with cumulative `le` bounds derived from the histogram's
/// power-of-two nanosecond buckets. Headers are written only when
/// `with_headers` is set (so per-shard labeled series share one family
/// header).
pub fn render_histogram(
    out: &mut String,
    name: &str,
    help: &str,
    labels: &str,
    h: &LatencyHistogram,
    with_headers: bool,
) {
    if with_headers {
        push_header(out, name, help, "histogram");
    }
    let bucket_name = format!("{name}_bucket");
    let mut cumulative = 0u64;
    for i in 0..LATENCY_BUCKETS {
        let c = h.bucket_count(i);
        // Skip empty power-of-two buckets to keep the exposition
        // readable; cumulative semantics are preserved by the running
        // sum and the +Inf bound below.
        cumulative += c;
        if c == 0 && i + 1 < LATENCY_BUCKETS {
            continue;
        }
        if i + 1 >= LATENCY_BUCKETS {
            break;
        }
        let le = LatencyHistogram::bucket_upper_nanos(i) as f64 * 1e-9;
        let le_label = if labels.is_empty() {
            format!("le=\"{}\"", fmt_value(le))
        } else {
            format!("{labels},le=\"{}\"", fmt_value(le))
        };
        push_sample(out, &bucket_name, &le_label, cumulative as f64);
    }
    let inf_label = if labels.is_empty() {
        "le=\"+Inf\"".to_owned()
    } else {
        format!("{labels},le=\"+Inf\"")
    };
    push_sample(out, &bucket_name, &inf_label, h.count() as f64);
    push_sample(
        out,
        &format!("{name}_sum"),
        labels,
        h.sum_nanos() as f64 * 1e-9,
    );
    push_sample(out, &format!("{name}_count"), labels, h.count() as f64);
}

/// `(suffix, help, value)` triples for every scalar counter — the
/// single source of truth for [`render`] and for labeled per-shard
/// variants composed by callers.
#[must_use]
pub fn counter_samples(c: &Counters) -> Vec<(&'static str, &'static str, u64)> {
    vec![
        ("decisions", "decide() calls", c.read(&c.decisions)),
        ("admitted", "admitted tasks", c.read(&c.admitted)),
        (
            "rejected_infeasible",
            "rejections with no feasible schedule",
            c.read(&c.rejected_infeasible),
        ),
        (
            "rejected_surplus",
            "rejections with non-positive surplus",
            c.read(&c.rejected_surplus),
        ),
        (
            "rejected_capacity",
            "rejections by the capacity check",
            c.read(&c.rejected_capacity),
        ),
        (
            "vendors_seen",
            "vendor quotes examined",
            c.read(&c.vendors_seen),
        ),
        (
            "vendors_pruned",
            "vendor quotes pruned by the delta-grid bound",
            c.read(&c.vendors_pruned),
        ),
        (
            "vendors_memoized",
            "vendor quotes served from the start-slot memo",
            c.read(&c.vendors_memoized),
        ),
        ("dp_runs", "findSchedule DP executions", c.read(&c.dp_runs)),
        ("dp_rows", "DP rows swept", c.read(&c.dp_rows)),
        ("dp_cells", "DP cells touched", c.read(&c.dp_cells)),
        (
            "dp_early_exits",
            "DP lower-bound early exits",
            c.read(&c.dp_early_exits),
        ),
        (
            "dual_updates",
            "dual price cell updates",
            c.read(&c.dual_updates),
        ),
        (
            "node_failures",
            "injected node crashes",
            c.read(&c.node_failures),
        ),
        (
            "node_recoveries",
            "node quarantine lifts",
            c.read(&c.node_recoveries),
        ),
        (
            "tasks_resubmitted",
            "disrupted-task remnants re-auctioned",
            c.read(&c.tasks_resubmitted),
        ),
        (
            "recoveries_admitted",
            "remnants re-admitted",
            c.read(&c.recoveries_admitted),
        ),
        (
            "refunds_issued",
            "refunds for unrecoverable tasks",
            c.read(&c.refunds_issued),
        ),
    ]
}

/// Renders the full exposition for one [`Counters`] instance: every
/// scalar counter as `pdftsp_<name>_total` plus the decide-latency
/// histogram as `pdftsp_decide_latency_seconds`.
#[must_use]
pub fn render(c: &Counters) -> String {
    let mut out = String::with_capacity(4096);
    for (suffix, help, value) in counter_samples(c) {
        let name = format!("pdftsp_{suffix}_total");
        push_header(&mut out, &name, help, "counter");
        push_sample(&mut out, &name, "", value as f64);
    }
    render_histogram(
        &mut out,
        "pdftsp_decide_latency_seconds",
        "decide() wall latency",
        "",
        &c.decide_latency,
        true,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_has_headers_totals_and_histogram() {
        let c = Counters::default();
        c.bump(&c.decisions, 41);
        c.bump(&c.admitted, 7);
        c.decide_latency.record_nanos(900);
        c.decide_latency.record_nanos(1_500);
        let text = render(&c);
        assert!(text.contains("# HELP pdftsp_decisions_total decide() calls\n"));
        assert!(text.contains("# TYPE pdftsp_decisions_total counter\n"));
        assert!(text.contains("pdftsp_decisions_total 41\n"));
        assert!(text.contains("pdftsp_admitted_total 7\n"));
        assert!(text.contains("# TYPE pdftsp_decide_latency_seconds histogram\n"));
        assert!(text.contains("pdftsp_decide_latency_seconds_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("pdftsp_decide_latency_seconds_count 2\n"));
        // sum = 2400 ns ≈ 2.4 µs (shortest round-trip formatting of
        // 2400 × 1e-9 carries the usual binary rounding tail).
        assert!(text.contains("pdftsp_decide_latency_seconds_sum 2.4"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = LatencyHistogram::default();
        // 900 ns → bucket 10 (le ≈ 1023 ns); 1500 ns → bucket 11.
        h.record_nanos(900);
        h.record_nanos(1_500);
        let mut out = String::new();
        render_histogram(&mut out, "t_seconds", "test", "shard=\"2\"", &h, false);
        assert!(out.contains("t_seconds_bucket{shard=\"2\",le=\"1.023e-6\"} 1\n"));
        assert!(out.contains("t_seconds_bucket{shard=\"2\",le=\"2.047e-6\"} 2\n"));
        assert!(out.contains("t_seconds_bucket{shard=\"2\",le=\"+Inf\"} 2\n"));
        assert!(out.contains("t_seconds_count{shard=\"2\"} 2\n"));
        assert!(!out.contains("# HELP"));
    }

    #[test]
    fn values_format_like_prometheus_expects() {
        assert_eq!(fmt_value(0.0), "0");
        assert_eq!(fmt_value(41.0), "41");
        assert_eq!(fmt_value(2.5), "2.5");
        assert_eq!(fmt_value(f64::INFINITY), "+Inf");
        assert_eq!(fmt_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(fmt_value(f64::NAN), "NaN");
    }
}
