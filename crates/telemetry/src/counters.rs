//! Always-on hot-path counters and the fixed-bucket latency histogram.
//!
//! Every field is a relaxed [`AtomicU64`]: uncontended relaxed increments
//! cost ~1 ns, which is cheaper than the branch that would gate them, so
//! counters run even with the no-op sink — that is what lets `bench_sched`
//! and [`crate::RunReport`] report prune hit-rates and DP work on every
//! run. Relaxed ordering is sound because readers (report assembly) run
//! strictly after the instrumented phase.

use std::sync::atomic::{AtomicU64, Ordering};

/// Relaxed load shorthand.
fn get(a: &AtomicU64) -> u64 {
    a.load(Ordering::Relaxed)
}

/// Relaxed add shorthand.
fn add(a: &AtomicU64, v: u64) {
    a.fetch_add(v, Ordering::Relaxed);
}

/// The scheduler's hot-path tallies. One instance lives inside each
/// `Telemetry` handle; all methods take `&self`.
#[derive(Debug, Default)]
pub struct Counters {
    /// `decide()` calls (one per arriving task).
    pub decisions: AtomicU64,
    /// Admitted tasks.
    pub admitted: AtomicU64,
    /// Rejections: no feasible schedule for any vendor.
    pub rejected_infeasible: AtomicU64,
    /// Rejections: best surplus `F(il) ≤ 0`.
    pub rejected_surplus: AtomicU64,
    /// Rejections: surplus positive but residual capacity refused.
    pub rejected_capacity: AtomicU64,
    /// Vendor quotes examined (prune check or DP).
    pub vendors_seen: AtomicU64,
    /// Vendor quotes discharged by the delta-grid lower bound alone.
    pub vendors_pruned: AtomicU64,
    /// Vendor quotes discharged by the start-slot memo (duplicate start).
    pub vendors_memoized: AtomicU64,
    /// `findSchedule` invocations that actually ran the DP.
    pub dp_runs: AtomicU64,
    /// DP rows swept, over all runs and refinement attempts.
    pub dp_rows: AtomicU64,
    /// DP cells touched, over all runs and refinement attempts.
    pub dp_cells: AtomicU64,
    /// DP runs whose lower-bound early exit fired.
    pub dp_early_exits: AtomicU64,
    /// DP rows where at least one candidate update ran full SIMD lanes.
    pub simd_rows: AtomicU64,
    /// DP rows where the SIMD kernel fell through to scalar tail cells.
    pub scalar_tail_rows: AtomicU64,
    /// `findSchedule` invocations that wanted SIMD but ran the scalar
    /// kernel (build without the `simd` feature).
    pub fallback_dispatches: AtomicU64,
    /// Shared delta grids built (one per `decide()` in the optimized path).
    pub grid_builds: AtomicU64,
    /// Cells materialized across all delta grids.
    pub grid_cells: AtomicU64,
    /// Individual `(k, t)` dual-price updates applied.
    pub dual_updates: AtomicU64,
    /// Branch-and-bound nodes branched by the offline MILP solver.
    pub milp_nodes: AtomicU64,
    /// LP (re-)solves performed by the MILP solver (root, dive, nodes).
    pub lp_solves: AtomicU64,
    /// LP solves that were handed a parent basis to warm-start from.
    pub lp_warm_starts: AtomicU64,
    /// Warm-started solves that finished from that basis (no cold restart).
    pub lp_warm_hits: AtomicU64,
    /// Simplex pivots executed (primal + dual), across all LP solves.
    pub simplex_pivots: AtomicU64,
    /// Node LPs that fell back to the dense reference simplex.
    pub lp_dense_fallbacks: AtomicU64,
    /// Node crash events injected (fault runs only).
    pub node_failures: AtomicU64,
    /// Node recovery events applied (fault runs only).
    pub node_recoveries: AtomicU64,
    /// Disrupted-task remnants re-run through the auction.
    pub tasks_resubmitted: AtomicU64,
    /// Remnants the Eq. (10) test re-admitted.
    pub recoveries_admitted: AtomicU64,
    /// Refunds issued for unrecoverable disrupted tasks.
    pub refunds_issued: AtomicU64,
    /// Wall-clock `decide()` latency distribution.
    pub decide_latency: LatencyHistogram,
}

impl Counters {
    /// Adds `v` to a tally.
    pub fn bump(&self, field: &AtomicU64, v: u64) {
        add(field, v);
    }

    /// Fraction of examined vendor quotes discharged without a DP run
    /// (pruned or memoized); 0 when nothing was examined.
    #[must_use]
    pub fn prune_hit_rate(&self) -> f64 {
        let seen = get(&self.vendors_seen);
        if seen == 0 {
            return 0.0;
        }
        let skipped = get(&self.vendors_pruned) + get(&self.vendors_memoized);
        skipped as f64 / seen as f64
    }

    /// Fraction of warm-start attempts that finished from the parent
    /// basis without a cold restart; 0 when nothing was warm-started.
    #[must_use]
    pub fn warm_start_hit_rate(&self) -> f64 {
        let attempts = get(&self.lp_warm_starts);
        if attempts == 0 {
            return 0.0;
        }
        get(&self.lp_warm_hits) as f64 / attempts as f64
    }

    /// Mean DP cells touched per `decide()`; 0 when no decisions ran.
    #[must_use]
    pub fn dp_cells_per_decision(&self) -> f64 {
        let n = get(&self.decisions);
        if n == 0 {
            return 0.0;
        }
        get(&self.dp_cells) as f64 / n as f64
    }

    /// Relaxed snapshot of one tally.
    #[must_use]
    pub fn read(&self, field: &AtomicU64) -> u64 {
        get(field)
    }
}

/// Number of histogram buckets: bucket `i` holds samples whose value in
/// nanoseconds has bit length `i` (i.e. `v == 0 → 0`, else
/// `floor(log2 v) + 1`), with everything ≥ 2⁴⁶ ns (~19 h) clamped into the
/// last bucket. 48 buckets cover sub-ns to hours at 2× resolution.
pub const LATENCY_BUCKETS: usize = 48;

/// Lock-free fixed-bucket log₂ histogram over nanosecond samples.
///
/// Quantiles are estimated at the geometric midpoint of the selected
/// bucket, so any estimate is within √2× of the true value — plenty for
/// p50/p95/p99 regression tracking without per-sample storage.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    fn bucket_index(nanos: u64) -> usize {
        let bits = (u64::BITS - nanos.leading_zeros()) as usize;
        bits.min(LATENCY_BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record_nanos(&self, nanos: u64) {
        add(&self.buckets[Self::bucket_index(nanos)], 1);
        add(&self.count, 1);
        add(&self.sum_nanos, nanos);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Records one sample given as a [`std::time::Duration`].
    pub fn record(&self, d: std::time::Duration) {
        self.record_nanos(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records one sample given in seconds (how `Decision::decide_seconds`
    /// stores it). Negative/NaN inputs count as 0 ns.
    pub fn record_seconds(&self, seconds: f64) {
        let nanos = (seconds * 1e9).max(0.0);
        self.record_nanos(if nanos.is_finite() {
            nanos as u64
        } else {
            u64::MAX
        });
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        get(&self.count)
    }

    /// Mean sample in nanoseconds (0 when empty).
    #[must_use]
    pub fn mean_nanos(&self) -> f64 {
        let n = get(&self.count);
        if n == 0 {
            return 0.0;
        }
        get(&self.sum_nanos) as f64 / n as f64
    }

    /// Largest sample in nanoseconds (exact, not bucketed).
    #[must_use]
    pub fn max_nanos(&self) -> u64 {
        get(&self.max_nanos)
    }

    /// Estimated `q`-quantile (`0 ≤ q ≤ 1`) in nanoseconds: walks the
    /// cumulative bucket counts and returns the geometric midpoint of the
    /// bucket containing the target rank. Returns 0 when empty.
    #[must_use]
    pub fn quantile_nanos(&self, q: f64) -> f64 {
        let n = get(&self.count);
        if n == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * n as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += get(b);
            if seen >= target {
                return Self::bucket_midpoint(i);
            }
        }
        Self::bucket_midpoint(LATENCY_BUCKETS - 1)
    }

    /// Sum of all samples in nanoseconds (exact).
    #[must_use]
    pub fn sum_nanos(&self) -> u64 {
        get(&self.sum_nanos)
    }

    /// Count in bucket `i` (see [`Self::bucket_upper_nanos`] for its
    /// range) — exposed for Prometheus cumulative-bucket rendering.
    ///
    /// # Panics
    /// Panics if `i ≥ LATENCY_BUCKETS`.
    #[must_use]
    pub fn bucket_count(&self, i: usize) -> u64 {
        get(&self.buckets[i])
    }

    /// Exclusive upper bound of bucket `i` in nanoseconds: bucket `i`
    /// holds samples in `[2^(i-1), 2^i)` (bucket 0 holds only 0), so its
    /// Prometheus `le` bound is `2^i − 1 ≈ 2^i`. The last bucket is
    /// unbounded and reports `u64::MAX`.
    #[must_use]
    pub fn bucket_upper_nanos(i: usize) -> u64 {
        if i + 1 >= LATENCY_BUCKETS {
            u64::MAX
        } else {
            (1u64 << i).saturating_sub(1)
        }
    }

    /// Geometric midpoint of bucket `i`, whose range is `[2^(i-1), 2^i)`
    /// (bucket 0 holds only the value 0).
    fn bucket_midpoint(i: usize) -> f64 {
        if i == 0 {
            return 0.0;
        }
        let lo = (1u64 << (i - 1)) as f64;
        lo * std::f64::consts::SQRT_2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 1);
        assert_eq!(LatencyHistogram::bucket_index(2), 2);
        assert_eq!(LatencyHistogram::bucket_index(3), 2);
        assert_eq!(LatencyHistogram::bucket_index(4), 3);
        assert_eq!(
            LatencyHistogram::bucket_index(u64::MAX),
            LATENCY_BUCKETS - 1
        );
    }

    #[test]
    fn quantiles_are_within_sqrt2_of_truth() {
        let h = LatencyHistogram::default();
        // 100 samples at 1 µs, 5 at 100 µs: p50 ≈ 1 µs, p99 ≈ 100 µs.
        for _ in 0..100 {
            h.record_nanos(1_000);
        }
        for _ in 0..5 {
            h.record_nanos(100_000);
        }
        let p50 = h.quantile_nanos(0.50);
        let p99 = h.quantile_nanos(0.99);
        let s = std::f64::consts::SQRT_2;
        assert!(p50 >= 1_000.0 / s && p50 <= 1_000.0 * s, "p50 {p50}");
        assert!(p99 >= 100_000.0 / s && p99 <= 100_000.0 * s, "p99 {p99}");
        assert_eq!(h.count(), 105);
        assert_eq!(h.max_nanos(), 100_000);
        let mean = h.mean_nanos();
        assert!((mean - (100.0 * 1_000.0 + 5.0 * 100_000.0) / 105.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_nanos(0.5), 0.0);
        assert_eq!(h.mean_nanos(), 0.0);
        assert_eq!(h.max_nanos(), 0);
    }

    #[test]
    fn record_seconds_matches_record_nanos() {
        let a = LatencyHistogram::default();
        let b = LatencyHistogram::default();
        a.record_seconds(15.702e-6);
        b.record_nanos(15_702);
        assert_eq!(a.quantile_nanos(0.5), b.quantile_nanos(0.5));
        a.record_seconds(-1.0); // clamps to 0, must not panic
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn counters_derived_rates() {
        let c = Counters::default();
        assert_eq!(c.prune_hit_rate(), 0.0);
        assert_eq!(c.dp_cells_per_decision(), 0.0);
        c.bump(&c.vendors_seen, 10);
        c.bump(&c.vendors_pruned, 4);
        c.bump(&c.vendors_memoized, 1);
        c.bump(&c.decisions, 2);
        c.bump(&c.dp_cells, 500);
        assert!((c.prune_hit_rate() - 0.5).abs() < 1e-12);
        assert!((c.dp_cells_per_decision() - 250.0).abs() < 1e-12);
        assert_eq!(c.read(&c.vendors_seen), 10);
    }

    #[test]
    fn warm_start_hit_rate_counts_hits_over_attempts() {
        let c = Counters::default();
        assert_eq!(c.warm_start_hit_rate(), 0.0);
        c.bump(&c.lp_warm_starts, 8);
        c.bump(&c.lp_warm_hits, 6);
        assert!((c.warm_start_hit_rate() - 0.75).abs() < 1e-12);
    }
}
