//! # pdftsp-telemetry
//!
//! The observability layer of the pdftsp workspace: a typed event stream,
//! lock-free hot-path counters, and aggregated run reports. The paper's
//! evaluation (§4) reasons entirely from quantities the scheduler would
//! otherwise throw away — dual-price trajectories `λ_kt`/`φ_kt`,
//! per-arrival admission surplus `F(il)`, vendor-pruning effectiveness,
//! DP work — so this crate makes every run explainable without slowing
//! the hot path down.
//!
//! * [`event`] — the typed [`Event`] taxonomy with JSONL round-tripping
//!   ([`Event::to_json`] / [`Event::from_json`]);
//! * [`sink`] — the [`Sink`] trait and its three implementations:
//!   [`NoopSink`] (zero-cost disabled), [`RingSink`] (bounded in-memory
//!   buffer for tests and live inspection), [`JsonlSink`] (streaming
//!   JSON-lines file writer);
//! * [`counters`] — [`Counters`], a block of relaxed atomics plus a
//!   fixed-bucket [`LatencyHistogram`], always on (an uncontended relaxed
//!   `fetch_add` costs ~1 ns);
//! * [`report`] — [`RunReport`], the single aggregate summary of one run
//!   (decision counts, prune/DP-work statistics, decide-latency
//!   percentiles, cluster utilization);
//! * [`span`] — causal task-lifecycle [`Span`]s (`route → propose →
//!   commit → settle`, plus `fault_recover`) with parent links and
//!   sim-clock timestamps, carried as [`Event::Span`] through any sink;
//! * [`flight`] — the per-shard lock-free [`FlightRecorder`] ring that
//!   dumps the last N events as JSONL on crash/quarantine/panic;
//! * [`prometheus`] / [`chrome`] — text exposition of counters and
//!   histograms, and `trace_event` JSON export of spans.
//!
//! ## Zero cost when disabled
//!
//! Event construction is deferred behind [`Telemetry::emit`], which takes
//! a closure and tests one cached `bool` before calling it. With the
//! no-op sink the per-emission cost is a predictable branch — the
//! overhead-guard test (`tests/tests/telemetry_overhead.rs`) asserts the
//! whole emission budget of one `decide()` stays under 2% of its p50
//! latency. Counters are *not* gated: they feed [`RunReport`] and the
//! bench emitters on every run, and relaxed increments on an uncontended
//! cache line are cheaper than the branch that would skip them.
//!
//! This crate depends only on `std`, so every workspace crate (including
//! `pdftsp-cluster` below `pdftsp-core`) can use it.

pub mod chrome;
pub mod counters;
pub mod event;
pub mod flight;
pub mod prometheus;
pub mod report;
pub mod sink;
pub mod span;

pub use counters::{Counters, LatencyHistogram};
pub use event::{Event, EventParseError, Reason};
pub use flight::FlightRecorder;
pub use report::{LatencySummary, RunReport, UtilizationSummary};
pub use sink::{parse_jsonl, JsonlSink, NoopSink, RingSink, Sink, SpanLog, TeeSink};
pub use span::{Span, SpanContext, Stage, SIM_TICKS_PER_SLOT};

use std::sync::Arc;

/// One scheduler's telemetry handle: the event sink plus the always-on
/// counters. Shared by reference into the evaluation hot path (all
/// interior state is atomic or behind the sink's own synchronization, so
/// `&Telemetry` is enough even from parallel vendor workers).
pub struct Telemetry {
    sink: Arc<dyn Sink>,
    /// Cached `sink.enabled()` so the hot-path test is one branch on a
    /// local field, not a virtual call.
    enabled: bool,
    /// Hot-path counters (always on).
    pub counters: Counters,
    /// Span attribution (shard/epoch) and the deterministic within-slot
    /// propose sequencer. Plain relaxed atomics; only consulted when the
    /// sink is enabled, so the disabled fast path is untouched.
    pub spans: SpanContext,
}

impl Telemetry {
    /// Telemetry with events routed to `sink`.
    #[must_use]
    pub fn new(sink: Arc<dyn Sink>) -> Self {
        let enabled = sink.enabled();
        Telemetry {
            sink,
            enabled,
            counters: Counters::default(),
            spans: SpanContext::default(),
        }
    }

    /// Telemetry with the no-op sink: counters only, no events.
    #[must_use]
    pub fn disabled() -> Self {
        Telemetry::new(Arc::new(NoopSink))
    }

    /// Whether events are being recorded at all.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Emits the event produced by `make` — which is only *called* when
    /// the sink is enabled, so disabled telemetry never pays for event
    /// construction.
    #[inline]
    pub fn emit(&self, make: impl FnOnce() -> Event) {
        if self.enabled {
            self.sink.emit(&make());
        }
    }

    /// The sink events are routed to.
    #[must_use]
    pub fn sink(&self) -> &dyn Sink {
        self.sink.as_ref()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled)
            .field("counters", &self.counters)
            .finish_non_exhaustive()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_telemetry_never_constructs_events() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        let mut built = false;
        tel.emit(|| {
            built = true;
            Event::ArrivalSeen {
                task: 0,
                slot: 0,
                bid: 1.0,
                vendors: 0,
            }
        });
        assert!(!built, "closure must not run under the no-op sink");
    }

    #[test]
    fn ring_telemetry_records_events() {
        let ring = Arc::new(RingSink::new(8));
        let tel = Telemetry::new(ring.clone());
        assert!(tel.is_enabled());
        tel.emit(|| Event::Rejected {
            task: 3,
            reason: Reason::NonPositiveSurplus,
        });
        let events = ring.events();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0],
            Event::Rejected {
                task: 3,
                reason: Reason::NonPositiveSurplus
            }
        );
    }
}
