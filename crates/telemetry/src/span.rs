//! Causal task-lifecycle spans: allocation-free, deterministic, and
//! emitted through the existing [`crate::Sink`] machinery as
//! [`crate::Event::Span`] records.
//!
//! A task's journey through the sharded auction service is five stages —
//! `route → propose → commit → settle`, with `fault_recover` detours —
//! and each stage becomes one [`Span`] carrying task/shard/epoch
//! attribution plus a parent link. Two design rules keep the layer
//! byte-deterministic across worker counts:
//!
//! * **Ids are pure functions.** [`Span::route`]/[`Span::propose`]/
//!   [`Span::commit`] derive their ids by hashing the task id with a
//!   per-stage salt (splitmix64), so a propose span emitted inside a
//!   shard worker and the commit span emitted later by the coordinator
//!   agree on the parent link without sharing any state.
//! * **Timestamps come from the sim clock.** One scenario slot is
//!   [`SIM_TICKS_PER_SLOT`] microseconds of trace time; within a slot,
//!   stages occupy fixed offsets and same-slot proposals are sequenced
//!   by a per-scheduler counter ([`SpanContext`]) that only ever runs on
//!   the shard's own sequential loop. No wall clock is read anywhere, so
//!   a 4-worker service run emits the byte-identical trace of the
//!   single-worker run (asserted in `tests/tests/service_determinism.rs`).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Trace-time microseconds per scenario slot: 1 slot renders as one
/// second in `about://tracing`, and slot boundaries land on round
/// numbers.
pub const SIM_TICKS_PER_SLOT: u64 = 1_000_000;

/// Within-slot offset of `route` spans.
const ROUTE_OFFSET: u64 = 10_000;
/// Nominal `route` duration.
const ROUTE_DUR: u64 = 20_000;
/// Within-slot offset of `fault_recover` spans (faults apply before
/// same-slot arrivals).
const FAULT_OFFSET: u64 = 40_000;
/// Nominal `fault_recover` duration.
const FAULT_DUR: u64 = 30_000;
/// Within-slot offset of the first `propose` span.
const PROPOSE_OFFSET: u64 = 100_000;
/// Tick stride between same-slot `propose` spans.
const PROPOSE_STRIDE: u64 = 100;
/// Nominal `propose` duration.
const PROPOSE_DUR: u64 = 50_000;
/// `commit` spans sit this far before the epoch's end-slot boundary.
const COMMIT_BACKOFF: u64 = 50_000;
/// Tick stride between same-epoch `commit` spans.
const COMMIT_STRIDE: u64 = 10;
/// Nominal `commit` duration.
const COMMIT_DUR: u64 = 8;
/// Nominal `settle` duration.
const SETTLE_DUR: u64 = 50_000;

const ROUTE_SALT: u64 = 0x526F_7574_6511_1111;
const PROPOSE_SALT: u64 = 0x5072_6F70_6F22_2222;
const COMMIT_SALT: u64 = 0x436F_6D6D_6933_3333;
const SETTLE_SALT: u64 = 0x5365_7474_6C44_4444;
const FAULT_SALT: u64 = 0x4661_756C_7455_5555;

/// The trace id node-scoped spans (`fault_recover`, `settle`) carry —
/// they belong to no single task.
pub const NODE_TRACE: u64 = u64::MAX;

/// splitmix64 — the same mixer the service's router uses; kept local so
/// this crate stays dependency-free.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Pure-function span id: hash of a per-stage salt and a stage-specific
/// key. 0 is reserved for "no parent", so the one input hashing to 0 is
/// nudged to 1.
fn span_id(salt: u64, key: u64) -> u64 {
    let h = splitmix64(salt ^ key);
    if h == 0 {
        1
    } else {
        h
    }
}

/// Task-lifecycle stage a span records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// The coordinator assigned the task to a shard.
    Route,
    /// One `decide()` on the owning shard (phase 1, admitted or not).
    Propose,
    /// The coordinator committed the admission against the global ledger
    /// (phase 2).
    Commit,
    /// The end-of-run settlement over all shards.
    Settle,
    /// A crash's release/quarantine/resubmit recovery pass.
    FaultRecover,
}

impl Stage {
    /// The wire token (`snake_case`), also the Chrome trace event name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Route => "route",
            Stage::Propose => "propose",
            Stage::Commit => "commit",
            Stage::Settle => "settle",
            Stage::FaultRecover => "fault_recover",
        }
    }

    /// Parses the wire token.
    #[must_use]
    pub fn parse(s: &str) -> Option<Stage> {
        match s {
            "route" => Some(Stage::Route),
            "propose" => Some(Stage::Propose),
            "commit" => Some(Stage::Commit),
            "settle" => Some(Stage::Settle),
            "fault_recover" => Some(Stage::FaultRecover),
            _ => None,
        }
    }

    /// Stable small integer for the flight recorder's word encoding.
    #[must_use]
    pub fn index(self) -> u64 {
        match self {
            Stage::Route => 0,
            Stage::Propose => 1,
            Stage::Commit => 2,
            Stage::Settle => 3,
            Stage::FaultRecover => 4,
        }
    }

    /// Inverse of [`Stage::index`].
    #[must_use]
    pub fn from_index(i: u64) -> Option<Stage> {
        match i {
            0 => Some(Stage::Route),
            1 => Some(Stage::Propose),
            2 => Some(Stage::Commit),
            3 => Some(Stage::Settle),
            4 => Some(Stage::FaultRecover),
            _ => None,
        }
    }
}

/// One stage of one task's journey: plain scalars only, so emission
/// never allocates and the flight recorder can store spans as fixed
/// word blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Which lifecycle stage.
    pub stage: Stage,
    /// Trace id: the task id for task-scoped spans, [`NODE_TRACE`] for
    /// node/run-scoped ones.
    pub trace: u64,
    /// This span's id (pure hash of stage salt + key; never 0).
    pub span: u64,
    /// Parent span id, 0 for roots.
    pub parent: u64,
    /// Task id (`usize::MAX` for node/run-scoped spans).
    pub task: usize,
    /// Owning shard (coordinator spans use the task's routed shard;
    /// `settle` uses 0).
    pub shard: usize,
    /// Service epoch the span was recorded in (0 outside the service).
    pub epoch: usize,
    /// Start timestamp in sim ticks (µs of trace time).
    pub ts: u64,
    /// Nominal duration in sim ticks.
    pub dur: u64,
}

impl Span {
    /// Root of a task's trace: the coordinator routed it to `shard`.
    /// Timestamped at the task's arrival slot; `epoch` is the epoch the
    /// arrival slot falls in.
    #[must_use]
    pub fn route(task: usize, shard: usize, arrival_slot: usize, epoch: usize) -> Span {
        Span {
            stage: Stage::Route,
            trace: task as u64,
            span: span_id(ROUTE_SALT, task as u64),
            parent: 0,
            task,
            shard,
            epoch,
            ts: arrival_slot as u64 * SIM_TICKS_PER_SLOT + ROUTE_OFFSET,
            dur: ROUTE_DUR,
        }
    }

    /// One `decide()` on the owning shard, child of the route span. `ts`
    /// comes from [`SpanContext::next_propose_ts`] so same-slot decides
    /// are sequenced deterministically.
    #[must_use]
    pub fn propose(task: usize, shard: usize, epoch: usize, ts: u64) -> Span {
        Span {
            stage: Stage::Propose,
            trace: task as u64,
            span: span_id(PROPOSE_SALT, task as u64),
            parent: span_id(ROUTE_SALT, task as u64),
            task,
            shard,
            epoch,
            ts,
            dur: PROPOSE_DUR,
        }
    }

    /// The coordinator's phase-2 commit of an admission, child of the
    /// propose span. `seq` is the commit's emission index within the
    /// epoch (deterministic: shard order, then op order).
    #[must_use]
    pub fn commit(task: usize, shard: usize, epoch: usize, end_slot: usize, seq: u64) -> Span {
        let base = (end_slot as u64 * SIM_TICKS_PER_SLOT).saturating_sub(COMMIT_BACKOFF);
        Span {
            stage: Stage::Commit,
            trace: task as u64,
            span: span_id(COMMIT_SALT, task as u64),
            parent: span_id(PROPOSE_SALT, task as u64),
            task,
            shard,
            epoch,
            ts: base + seq * COMMIT_STRIDE,
            dur: COMMIT_DUR,
        }
    }

    /// The end-of-run settlement (one per service run).
    #[must_use]
    pub fn settle(horizon: usize, epoch: usize) -> Span {
        Span {
            stage: Stage::Settle,
            trace: NODE_TRACE,
            span: span_id(SETTLE_SALT, horizon as u64),
            parent: 0,
            task: usize::MAX,
            shard: 0,
            epoch,
            ts: horizon as u64 * SIM_TICKS_PER_SLOT + ROUTE_OFFSET,
            dur: SETTLE_DUR,
        }
    }

    /// One crash-recovery pass on `shard` for local node `node` at
    /// `slot` (release, quarantine, resubmissions).
    #[must_use]
    pub fn fault_recover(shard: usize, epoch: usize, node: usize, slot: usize) -> Span {
        let key = ((shard as u64) << 40) ^ ((slot as u64) << 20) ^ node as u64;
        Span {
            stage: Stage::FaultRecover,
            trace: NODE_TRACE,
            span: span_id(FAULT_SALT, key),
            parent: 0,
            task: usize::MAX,
            shard,
            epoch,
            ts: slot as u64 * SIM_TICKS_PER_SLOT + FAULT_OFFSET + node as u64 * PROPOSE_STRIDE,
            dur: FAULT_DUR,
        }
    }
}

/// Per-scheduler span context: shard/epoch attribution plus the
/// within-slot sequence counter behind propose timestamps.
///
/// All fields are relaxed atomics only so the context can live inside
/// the shared [`crate::Telemetry`] handle; every writer is the owning
/// scheduler's single sequential loop, so ordering never matters.
#[derive(Debug, Default)]
pub struct SpanContext {
    shard: AtomicU64,
    epoch: AtomicU64,
    slot: AtomicU64,
    seq: AtomicU64,
    /// Set while a recovery resubmission re-enters `decide()`, so the
    /// remnant does not emit a second propose span colliding with the
    /// original admission's (the detour is covered by `fault_recover`).
    suppress: AtomicBool,
}

impl SpanContext {
    /// Pins the owning shard (set once at service construction).
    pub fn set_shard(&self, shard: usize) {
        self.shard.store(shard as u64, Ordering::Relaxed);
    }

    /// The owning shard (0 outside the service).
    #[must_use]
    pub fn shard(&self) -> usize {
        self.shard.load(Ordering::Relaxed) as usize
    }

    /// Sets the current service epoch (once per shard per epoch).
    pub fn set_epoch(&self, epoch: usize) {
        self.epoch.store(epoch as u64, Ordering::Relaxed);
    }

    /// The current service epoch (0 outside the service).
    #[must_use]
    pub fn epoch(&self) -> usize {
        self.epoch.load(Ordering::Relaxed) as usize
    }

    /// Suppresses (or re-enables) span emission — used around recovery
    /// resubmissions.
    pub fn set_suppressed(&self, v: bool) {
        self.suppress.store(v, Ordering::Relaxed);
    }

    /// Whether span emission is currently suppressed.
    #[must_use]
    pub fn suppressed(&self) -> bool {
        self.suppress.load(Ordering::Relaxed)
    }

    /// Deterministic sim-clock timestamp for the next propose span in
    /// `slot`: the j-th same-slot decide lands at
    /// `slot · SIM_TICKS_PER_SLOT + PROPOSE_OFFSET + j · stride`. The
    /// sequence resets when the slot advances; the scheduler's arrival
    /// loop is sequential and slot-monotonic, so this is a pure function
    /// of the decision order.
    #[must_use]
    pub fn next_propose_ts(&self, slot: usize) -> u64 {
        let s = slot as u64;
        if self.slot.swap(s, Ordering::Relaxed) != s {
            self.seq.store(0, Ordering::Relaxed);
        }
        let j = self.seq.fetch_add(1, Ordering::Relaxed);
        s * SIM_TICKS_PER_SLOT + PROPOSE_OFFSET + j * PROPOSE_STRIDE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_tokens_round_trip() {
        for s in [
            Stage::Route,
            Stage::Propose,
            Stage::Commit,
            Stage::Settle,
            Stage::FaultRecover,
        ] {
            assert_eq!(Stage::parse(s.as_str()), Some(s));
            assert_eq!(Stage::from_index(s.index()), Some(s));
        }
        assert_eq!(Stage::parse("beige"), None);
        assert_eq!(Stage::from_index(99), None);
    }

    #[test]
    fn parent_links_chain_route_propose_commit() {
        let r = Span::route(7, 1, 3, 0);
        let p = Span::propose(7, 1, 0, 12345);
        let c = Span::commit(7, 1, 0, 4, 2);
        assert_eq!(p.parent, r.span);
        assert_eq!(c.parent, p.span);
        assert_eq!(r.parent, 0);
        assert_eq!(r.trace, 7);
        assert_eq!(p.trace, 7);
        assert_eq!(c.trace, 7);
        // Ids are distinct across stages and never the no-parent
        // sentinel.
        assert_ne!(r.span, p.span);
        assert_ne!(p.span, c.span);
        assert_ne!(r.span, 0);
    }

    #[test]
    fn timestamps_are_slot_ordered_and_deterministic() {
        let ctx = SpanContext::default();
        let a = ctx.next_propose_ts(2);
        let b = ctx.next_propose_ts(2);
        let c = ctx.next_propose_ts(3);
        assert_eq!(a, 2 * SIM_TICKS_PER_SLOT + PROPOSE_OFFSET);
        assert_eq!(b, a + PROPOSE_STRIDE);
        assert_eq!(c, 3 * SIM_TICKS_PER_SLOT + PROPOSE_OFFSET);
        // A fresh context replays the same sequence.
        let ctx2 = SpanContext::default();
        assert_eq!(ctx2.next_propose_ts(2), a);
        assert_eq!(ctx2.next_propose_ts(2), b);
        // Route precedes fault which precedes propose within a slot.
        let r = Span::route(0, 0, 2, 0);
        let f = Span::fault_recover(0, 0, 1, 2);
        assert!(r.ts < f.ts && f.ts < a);
    }

    #[test]
    fn fault_span_ids_separate_shards_nodes_and_slots() {
        let a = Span::fault_recover(0, 0, 1, 5);
        let b = Span::fault_recover(1, 0, 1, 5);
        let c = Span::fault_recover(0, 0, 2, 5);
        let d = Span::fault_recover(0, 0, 1, 6);
        let ids = [a.span, b.span, c.span, d.span];
        for (i, x) in ids.iter().enumerate() {
            for y in &ids[i + 1..] {
                assert_ne!(x, y);
            }
        }
        assert_eq!(a.trace, NODE_TRACE);
        assert_eq!(a.task, usize::MAX);
    }

    #[test]
    fn suppression_gates_and_clears() {
        let ctx = SpanContext::default();
        assert!(!ctx.suppressed());
        ctx.set_suppressed(true);
        assert!(ctx.suppressed());
        ctx.set_suppressed(false);
        assert!(!ctx.suppressed());
        ctx.set_shard(3);
        ctx.set_epoch(9);
        assert_eq!(ctx.shard(), 3);
        assert_eq!(ctx.epoch(), 9);
    }
}
